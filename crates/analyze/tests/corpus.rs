//! Seeded-defect corpus for the tape verifier.
//!
//! Each case hand-builds a malformed trace — the kind of tape a buggy op
//! builder would record — and asserts the verifier pins the *right*
//! diagnostic on the *right* node. The `Graph` API cannot produce these
//! tapes (it validates eagerly), which is exactly why the verifier works on
//! the plain-data trace IR.

use hero_analyze::{analyze, AnalyzeOptions, DiagCode, Report};
use hero_autodiff::{NodeTrace, TraceDetail};
use hero_tensor::ConvGeometry;

fn node(
    index: usize,
    op: &'static str,
    parents: &[usize],
    shape: &[usize],
    detail: TraceDetail,
) -> NodeTrace {
    NodeTrace {
        index,
        op,
        parents: parents.to_vec(),
        shape: shape.to_vec(),
        detail,
    }
}

fn input(index: usize, shape: &[usize]) -> NodeTrace {
    node(index, "input", &[], shape, TraceDetail::None)
}

fn run(tape: &[NodeTrace]) -> Report {
    analyze(tape, &AnalyzeOptions::default())
}

#[test]
fn matmul_inner_dim_mismatch() {
    let tape = vec![
        input(0, &[2, 3]),
        input(1, &[4, 5]),
        node(2, "matmul", &[0, 1], &[2, 5], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::MatmulDimMismatch), "{report}");
}

#[test]
fn matmul_operand_rank_mismatch() {
    let tape = vec![
        input(0, &[2, 3, 4]),
        input(1, &[3, 5]),
        node(2, "matmul", &[0, 1], &[2, 5], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::RankMismatch), "{report}");
}

#[test]
fn matmul_lying_output_shape() {
    // Inner dims agree, but the recorded output shape is transposed.
    let tape = vec![
        input(0, &[2, 3]),
        input(1, &[3, 4]),
        node(2, "matmul", &[0, 1], &[4, 2], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::ShapeMismatch), "{report}");
}

#[test]
fn reshape_element_count_mismatch() {
    let tape = vec![
        input(0, &[6]),
        node(
            1,
            "reshape",
            &[0],
            &[2, 2],
            TraceDetail::Reshape { from: vec![6] },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ReshapeCountMismatch), "{report}");
}

#[test]
fn reshape_with_stale_source_shape() {
    // The recorded "from" shape disagrees with the actual operand.
    let tape = vec![
        input(0, &[2, 3]),
        node(
            1,
            "reshape",
            &[0],
            &[4],
            TraceDetail::Reshape { from: vec![4] },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ShapeMismatch), "{report}");
}

#[test]
fn broadcast_incompatible_operands() {
    let tape = vec![
        input(0, &[2, 3]),
        input(1, &[4]),
        node(2, "add", &[0, 1], &[2, 3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::BroadcastIncompatible), "{report}");
}

#[test]
fn dangling_parent_reference() {
    let tape = vec![
        input(0, &[3]),
        node(1, "square", &[7], &[3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ParentOutOfRange), "{report}");
}

#[test]
fn forward_reference_breaks_topological_order() {
    let tape = vec![
        input(0, &[3]),
        node(1, "add", &[0, 2], &[3], TraceDetail::None),
        node(2, "square", &[0], &[3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ForwardReference), "{report}");
}

#[test]
fn node_index_disagrees_with_position() {
    let tape = vec![
        input(0, &[3]),
        node(5, "square", &[0], &[3], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::IndexMismatch), "{report}");
}

#[test]
fn conv_geometry_disagrees_with_input() {
    let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
    let tape = vec![
        input(0, &[1, 3, 6, 6]), // 6x6, geometry says 8x8
        input(1, &[4, 27]),
        node(
            2,
            "conv2d",
            &[0, 1],
            &[1, 4, 8, 8],
            TraceDetail::Conv { geom },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::ConvGeometryMismatch), "{report}");
}

#[test]
fn conv_weight_patch_width_mismatch() {
    let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
    let tape = vec![
        input(0, &[1, 3, 8, 8]),
        input(1, &[4, 25]), // must be 3*3*3 = 27 columns
        node(
            2,
            "conv2d",
            &[0, 1],
            &[1, 4, 8, 8],
            TraceDetail::Conv { geom },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(2, DiagCode::ConvGeometryMismatch), "{report}");
}

#[test]
fn avg_pool_window_does_not_tile_input() {
    let tape = vec![
        input(0, &[1, 2, 8, 8]),
        node(
            1,
            "avg_pool2d",
            &[0],
            &[1, 2, 2, 2],
            TraceDetail::AvgPool { k: 3 },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::PoolGeometryMismatch), "{report}");
}

#[test]
fn max_pool_argmax_routes_outside_input() {
    let tape = vec![
        input(0, &[1, 1, 4, 4]),
        node(
            1,
            "max_pool2d",
            &[0],
            &[1, 1, 2, 2],
            TraceDetail::MaxPool {
                outputs: 4,
                max_source: Some(99), // input has 16 elements
            },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ArgIndexOutOfRange), "{report}");
}

#[test]
fn loss_label_count_mismatch() {
    let tape = vec![
        input(0, &[4, 10]),
        node(
            1,
            "cross_entropy",
            &[0],
            &[],
            TraceDetail::Loss { labels: 3 },
        ),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::LabelCountMismatch), "{report}");
}

#[test]
fn dead_subgraph_behind_explicit_root() {
    // Nodes 3 and 4 form a branch the loss never consumes.
    let tape = vec![
        input(0, &[4]),
        node(1, "square", &[0], &[4], TraceDetail::None),
        node(2, "sum", &[1], &[], TraceDetail::None),
        node(3, "scale", &[1], &[4], TraceDetail::None),
        node(4, "add", &[3, 0], &[4], TraceDetail::None),
    ];
    let report = analyze(&tape, &AnalyzeOptions::with_roots(vec![2]));
    assert!(!report.has_errors(), "{report}");
    assert!(report.flags(3, DiagCode::DeadNode), "{report}");
    assert!(report.flags(4, DiagCode::DeadNode), "{report}");
}

#[test]
fn elementwise_op_shape_drift() {
    // A unary op whose recorded output silently changed shape.
    let tape = vec![
        input(0, &[2, 3]),
        node(1, "relu", &[0], &[3, 2], TraceDetail::None),
    ];
    let report = run(&tape);
    assert!(report.flags(1, DiagCode::ShapeMismatch), "{report}");
}

#[test]
fn diagnostics_carry_provenance_chains() {
    let tape = vec![
        input(0, &[2, 3]),
        node(1, "relu", &[0], &[2, 3], TraceDetail::None),
        node(2, "square", &[1], &[2, 3], TraceDetail::None),
        input(3, &[4, 5]),
        node(4, "matmul", &[2, 3], &[2, 5], TraceDetail::None),
    ];
    let report = run(&tape);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == DiagCode::MatmulDimMismatch)
        .expect("matmul defect not flagged");
    // Chain walks first parents: matmul <- square <- relu <- input.
    assert_eq!(d.provenance, vec![4, 2, 1, 0]);
    assert_eq!(d.op, "matmul");
}

#[test]
fn empty_tape_is_clean() {
    let report = run(&[]);
    assert!(report.is_clean());
    assert_eq!(report.nodes, 0);
}
