//! The dense, contiguous, row-major `f32` tensor.

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use std::fmt;

/// A dense n-dimensional array of `f32` values in row-major order.
///
/// `Tensor` owns its storage and is always contiguous; transposes and
/// reshapes either copy or reinterpret the buffer. This keeps the substrate
/// simple and predictable for the single-threaded CPU training workloads the
/// HERO reproduction runs.
///
/// # Examples
///
/// ```
/// use hero_tensor::Tensor;
///
/// # fn main() -> Result<(), hero_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
    /// Thread the storage was obtained on. Recycling is keyed to it: a
    /// tensor dropped on any other thread releases its buffer to the
    /// allocator instead of donating it to that thread's pool, so scratch
    /// pools never exchange buffers across worker threads.
    home: std::thread::ThreadId,
}

/// Clones allocate fresh storage on the *current* thread (and are tagged
/// with it), so a clone of a worker-produced tensor recycles locally.
impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor::assemble(self.shape.clone(), self.data.clone())
    }
}

/// Equality is shape + contents; the home thread is bookkeeping, not value.
impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

/// Dropping a tensor donates its storage to the thread-local scratch pool,
/// so temporaries produced on the training hot path (op outputs, graph
/// values, gradients) recycle instead of round-tripping the allocator. The
/// pool's free list is capped, so this cannot grow memory without bound.
/// Storage is only donated on the tensor's home thread (see
/// [`ScratchPool`](crate::pool::ScratchPool)); elsewhere it is freed.
impl Drop for Tensor {
    fn drop(&mut self) {
        crate::pool::recycle_from(self.home, std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Builds a tensor around `data`, tagging it with the current thread as
    /// the storage's recycling home. All construction funnels through here.
    #[inline]
    pub(crate) fn assemble(shape: Shape, data: Vec<f32>) -> Self {
        Tensor {
            shape,
            data,
            home: crate::pool::current_thread(),
        }
    }
    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len()` differs from the
    /// shape's volume.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::DataLength {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor::assemble(shape, data))
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor::assemble(Shape::scalar(), vec![value])
    }

    /// Creates a tensor filled with zeros (storage leased from the scratch
    /// pool, so hot-path zero tensors recycle instead of reallocating).
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let data = crate::pool::lease(n);
        Tensor::assemble(shape, data)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor::assemble(shape, vec![value; n])
    }

    /// Creates a 1-D tensor `[0, 1, ..., n-1]` as `f32`.
    pub fn arange(n: usize) -> Self {
        Tensor::assemble(Shape::from([n]), (0..n).map(|i| i as f32).collect())
    }

    /// Creates a tensor whose element at multi-index `idx` is `f(idx)`.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        for flat in 0..n {
            let idx = shape.unravel(flat);
            data.push(f(&idx));
        }
        Tensor::assemble(shape, data)
    }

    /// Thread that owns this tensor's storage for recycling purposes.
    pub(crate) fn home(&self) -> std::thread::ThreadId {
        self.home
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat storage (bypassing the
    /// recycling `Drop`).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Clones this tensor into storage leased from the thread-local scratch
    /// pool. Used where a clone is handed to a recycling consumer (e.g. a
    /// `Graph` input), so steady-state clones reuse pooled buffers instead
    /// of allocating.
    pub fn clone_pooled(&self) -> Tensor {
        Tensor::assemble(self.shape.clone(), crate::pool::lease_copy(&self.data))
    }

    /// Copies `src`'s contents into this tensor without reallocating — the
    /// in-place building block of the zero-allocation training hot path.
    ///
    /// # Errors
    ///
    /// Returns a shape error unless the shapes match exactly.
    pub fn copy_from(&mut self, src: &Tensor) -> Result<()> {
        if self.shape != src.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: src.dims().to_vec(),
            });
        }
        self.data.copy_from_slice(&src.data);
        Ok(())
    }

    /// Reads the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or any coordinate is invalid.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or any coordinate is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the tensor holds more
    /// than one element.
    pub fn item(&self) -> Result<f32> {
        if self.numel() != 1 {
            return Err(TensorError::InvalidArgument(format!(
                "item() requires exactly one element, tensor has {}",
                self.numel()
            )));
        }
        Ok(self.data[0])
    }

    /// Returns a tensor with the same data and a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if the volumes differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(TensorError::DataLength {
                expected: shape.numel(),
                actual: self.numel(),
            });
        }
        Ok(Tensor::assemble(shape, self.data.clone()))
    }

    /// In-place variant of [`reshape`](Tensor::reshape); avoids the copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if the volumes differ.
    pub fn reshape_in_place(&mut self, shape: impl Into<Shape>) -> Result<()> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(TensorError::DataLength {
                expected: shape.numel(),
                actual: self.numel(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Flattens to a 1-D tensor without copying semantics changes.
    pub fn flatten(&self) -> Tensor {
        Tensor::assemble(Shape::from([self.numel()]), self.data.clone())
    }

    /// Transposes a 2-D tensor (copies).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the rank is 2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = crate::pool::lease(r * c);
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(out, [c, r])
    }

    /// Permutes the axes according to `perm` (a permutation of `0..rank`).
    ///
    /// # Errors
    ///
    /// Returns an error if `perm` is not a valid permutation of the axes.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                actual: perm.len(),
            });
        }
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            if p >= self.rank() || seen[p] {
                return Err(TensorError::InvalidArgument(format!(
                    "perm {perm:?} is not a permutation of 0..{}",
                    self.rank()
                )));
            }
            seen[p] = true;
        }
        let new_dims: Vec<usize> = perm.iter().map(|&p| self.dims()[p]).collect();
        let new_shape = Shape::new(new_dims);
        let old_strides = self.shape.strides();
        // Source stride for each output axis; walk the output row-major with
        // an odometer so the source offset updates incrementally.
        let strides: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
        let dims = new_shape.dims().to_vec();
        let rank = dims.len();
        let mut out = crate::pool::lease_raw(self.numel());
        let mut idx = vec![0usize; rank];
        let mut off = 0usize;
        for _ in 0..self.numel() {
            out.push(self.data[off]);
            for ax in (0..rank).rev() {
                idx[ax] += 1;
                off += strides[ax];
                if idx[ax] < dims[ax] {
                    break;
                }
                off -= dims[ax] * strides[ax];
                idx[ax] = 0;
            }
        }
        Ok(Tensor::assemble(new_shape, out))
    }

    /// Extracts the `index`-th slice along `axis`, dropping that axis.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid axis or index.
    pub fn select(&self, axis: usize, index: usize) -> Result<Tensor> {
        let dim = self.shape.dim(axis)?;
        if index >= dim {
            return Err(TensorError::IndexOutOfRange { index, size: dim });
        }
        let out_shape = self.shape.remove_axis(axis)?;
        // Row-major: the slice is `outer` runs of `inner` contiguous
        // elements, one run per block of the leading axes.
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let outer = if self.numel() == 0 {
            0
        } else {
            self.numel() / (dim * inner)
        };
        let mut out = crate::pool::lease_raw(out_shape.numel());
        for o in 0..outer {
            out.extend_from_slice(&self.data[(o * dim + index) * inner..][..inner]);
        }
        Ok(Tensor::assemble(out_shape, out))
    }

    /// Returns the contiguous sub-tensor `[start, start+len)` along axis 0.
    ///
    /// # Errors
    ///
    /// Returns an error if the range exceeds the first dimension.
    pub fn narrow(&self, start: usize, len: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let d0 = self.dims()[0];
        if start + len > d0 {
            return Err(TensorError::IndexOutOfRange {
                index: start + len,
                size: d0,
            });
        }
        let row = self.numel() / d0.max(1);
        let mut dims = self.dims().to_vec();
        dims[0] = len;
        Tensor::from_vec(
            crate::pool::lease_copy(&self.data[start * row..(start + len) * row]),
            dims,
        )
    }

    /// Stacks tensors of identical shape along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty or shapes disagree.
    pub fn stack(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("stack of zero tensors".into()))?;
        let mut data = Vec::with_capacity(first.numel() * parts.len());
        for p in parts {
            if p.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: p.dims().to_vec(),
                });
            }
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, dims)
    }

    /// Concatenates tensors along axis 0 (shapes must agree on other axes).
    ///
    /// # Errors
    ///
    /// Returns an error if `parts` is empty or trailing shapes disagree.
    pub fn concat(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat of zero tensors".into()))?;
        if first.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let mut total0 = 0;
        let mut data = Vec::new();
        for p in parts {
            if p.rank() != first.rank() || p.dims()[1..] != first.dims()[1..] {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: p.dims().to_vec(),
                });
            }
            total0 += p.dims()[0];
            data.extend_from_slice(&p.data);
        }
        let mut dims = first.dims().to_vec();
        dims[0] = total0;
        Tensor::from_vec(data, dims)
    }

    /// True when every element is finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Tensor {
    /// The default tensor is the scalar `0.0`.
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ... {} elements]", &self.data[..8], self.numel())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], [2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], [2, 3]),
            Err(TensorError::DataLength {
                expected: 6,
                actual: 5
            })
        ));
    }

    #[test]
    fn constructors_fill_correctly() {
        assert!(Tensor::zeros([3, 3]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones([2]).data().iter().all(|&v| v == 1.0));
        assert_eq!(Tensor::full([2], 7.5).data(), &[7.5, 7.5]);
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(Tensor::scalar(2.0).item().unwrap(), 2.0);
    }

    #[test]
    fn from_fn_uses_multi_index() {
        let t = Tensor::from_fn([2, 3], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.get(&[1, 2]).unwrap(), 12.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros([2, 2]);
        t.set(&[0, 1], 5.0).unwrap();
        assert_eq!(t.get(&[0, 1]).unwrap(), 5.0);
        assert!(t.set(&[2, 0], 1.0).is_err());
    }

    #[test]
    fn item_rejects_multielement() {
        assert!(Tensor::zeros([2]).item().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        assert_eq!(t.get(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshape([4]).is_err());
        let mut t2 = t.clone();
        t2.reshape_in_place([3, 2]).unwrap();
        assert_eq!(t2.dims(), &[3, 2]);
    }

    #[test]
    fn transpose_is_involutive() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.get(&[2, 1]).unwrap(), t.get(&[1, 2]).unwrap());
        assert_eq!(tt.transpose().unwrap(), t);
        assert!(Tensor::arange(3).transpose().is_err());
    }

    #[test]
    fn permute_matches_transpose_for_rank2() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        assert_eq!(t.permute(&[1, 0]).unwrap(), t.transpose().unwrap());
        assert_eq!(t.permute(&[0, 1]).unwrap(), t);
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
    }

    #[test]
    fn permute_rank3_moves_channels() {
        // NCHW -> NHWC style permutation on a (1,2,2,2) tensor.
        let t = Tensor::arange(8).reshape([1, 2, 2, 2]).unwrap();
        let p = t.permute(&[0, 2, 3, 1]).unwrap();
        assert_eq!(p.dims(), &[1, 2, 2, 2]);
        assert_eq!(p.get(&[0, 1, 1, 0]).unwrap(), t.get(&[0, 0, 1, 1]).unwrap());
    }

    #[test]
    fn select_drops_axis() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        let row = t.select(0, 1).unwrap();
        assert_eq!(row.data(), &[3.0, 4.0, 5.0]);
        let col = t.select(1, 2).unwrap();
        assert_eq!(col.data(), &[2.0, 5.0]);
        assert!(t.select(1, 3).is_err());
        assert!(t.select(2, 0).is_err());
    }

    #[test]
    fn narrow_takes_row_ranges() {
        let t = Tensor::arange(6).reshape([3, 2]).unwrap();
        let mid = t.narrow(1, 2).unwrap();
        assert_eq!(mid.dims(), &[2, 2]);
        assert_eq!(mid.data(), &[2.0, 3.0, 4.0, 5.0]);
        assert!(t.narrow(2, 2).is_err());
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::arange(2);
        let b = Tensor::full([2], 9.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[0.0, 1.0, 9.0, 9.0]);
        let c = Tensor::concat(&[a.clone(), b]).unwrap();
        assert_eq!(c.dims(), &[4]);
        assert!(Tensor::stack(&[]).is_err());
        assert!(Tensor::stack(&[a, Tensor::zeros([3])]).is_err());
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::zeros([2]);
        assert!(t.is_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Tensor::zeros([2, 2]).to_string().is_empty());
        assert!(Tensor::zeros([100]).to_string().contains("100 elements"));
    }
}
