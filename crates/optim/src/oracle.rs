//! Adapters connecting [`hero_nn::Network`] to the model-agnostic
//! [`GradOracle`] interface.

use hero_hessian::GradOracle;
use hero_nn::{loss_and_grads, Network};
use hero_tensor::{Result, Tensor};

/// A gradient oracle evaluating one mini-batch's cross-entropy loss on a
/// network.
///
/// Each [`GradOracle::grad`] call installs the supplied parameters into the
/// network, runs a train-mode forward/backward pass, and returns the loss
/// and canonical-order gradients. HERO calls this up to three times per
/// step at different parameter points.
#[derive(Debug)]
pub struct BatchOracle<'a> {
    net: &'a mut Network,
    x: &'a Tensor,
    labels: &'a [usize],
    /// When set, gradients are evaluated over this contiguous sample
    /// range only. Note: the data-parallel executor does NOT use this —
    /// its `ShardedOracle` precomputes per-shard tensor views instead;
    /// see [`BatchOracle::with_range`].
    range: Option<(usize, usize)>,
    calls: usize,
}

impl<'a> BatchOracle<'a> {
    /// Binds a network to one mini-batch.
    pub fn new(net: &'a mut Network, x: &'a Tensor, labels: &'a [usize]) -> Self {
        BatchOracle {
            net,
            x,
            labels,
            range: None,
            calls: 0,
        }
    }

    /// Builder: restricts the oracle to the shard `[start, start + len)`
    /// of the batch. Loss and gradients become the *shard* means.
    ///
    /// This is a serial reference implementation of shard-mean math, kept
    /// for unit tests and experiments. The data-parallel executor
    /// (`hero_parallel::ShardedOracle`) does not call it: workers there
    /// receive precomputed per-shard tensor views instead.
    ///
    /// # Errors
    ///
    /// Returns an error if the range exceeds the batch.
    pub fn with_range(mut self, start: usize, len: usize) -> Result<Self> {
        let n = self.labels.len();
        if len == 0 || start + len > n {
            return Err(hero_tensor::TensorError::InvalidArgument(format!(
                "shard range [{start}, {}) invalid for batch of {n} samples",
                start + len
            )));
        }
        self.range = Some((start, len));
        Ok(self)
    }

    /// Number of gradient evaluations performed so far.
    pub fn calls(&self) -> usize {
        self.calls
    }
}

impl GradOracle for BatchOracle<'_> {
    fn grad(&mut self, params: &[Tensor]) -> Result<(f32, Vec<Tensor>)> {
        hero_obs::counters::GRAD_EVALS.incr();
        let sync = hero_obs::span("sync");
        self.net.set_params(params)?;
        drop(sync);
        // Only the first evaluation of a step sees the unperturbed weights;
        // SAM/GRAD-L1/HERO evaluate additional gradients at *shifted*
        // weights, which must not contaminate the batch-norm running
        // statistics used at eval time.
        let prev = hero_nn::norm::set_bn_running_stat_updates(self.calls == 0);
        let out = match self.range {
            Some((start, len)) => self
                .x
                .narrow(start, len)
                .and_then(|x| loss_and_grads(self.net, &x, &self.labels[start..start + len])),
            None => loss_and_grads(self.net, self.x, self.labels),
        };
        hero_nn::norm::set_bn_running_stat_updates(prev);
        self.calls += 1;
        let out = out?;
        Ok((out.loss, out.grads))
    }
}

/// Runs one optimization step of `optimizer` on `net` with the given batch,
/// leaving the updated parameters installed in the network.
///
/// The decay mask is derived from the network's parameter kinds (weights
/// decay; biases and batch-norm parameters do not).
///
/// # Errors
///
/// Returns shape errors if the batch is incompatible with the network.
pub fn train_step(
    net: &mut Network,
    optimizer: &mut crate::method::Optimizer,
    x: &Tensor,
    labels: &[usize],
    lr: f32,
) -> Result<crate::method::StepStats> {
    let _step = hero_obs::span("train_step");
    let sync = hero_obs::span("sync");
    let mut params = net.params();
    let decay_mask: Vec<bool> = net
        .param_infos()
        .iter()
        .map(|i| i.kind.is_decayed())
        .collect();
    drop(sync);
    let stats = {
        let mut oracle = BatchOracle::new(net, x, labels);
        optimizer.step(&mut oracle, &mut params, &decay_mask, lr)?
    };
    let _sync = hero_obs::span("sync");
    net.set_params(&params)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{Method, Optimizer};
    use hero_nn::evaluate_accuracy;
    use hero_nn::models::{mlp, ModelConfig};
    use hero_tensor::rng::StdRng;

    fn toy_problem() -> (Network, Tensor, Vec<usize>) {
        let cfg = ModelConfig {
            classes: 2,
            in_channels: 1,
            input_hw: 2,
            width: 4,
        };
        let net = mlp(cfg, &[12], &mut StdRng::seed_from_u64(5));
        // Linearly separable toy data: class = sign of first pixel.
        let n = 16;
        let x = Tensor::from_fn([n, 1, 2, 2], |i| {
            let sign = if i[0] % 2 == 0 { 1.0 } else { -1.0 };
            sign * (1.0 + 0.1 * (i[3] as f32))
        });
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        (net, x, labels)
    }

    #[test]
    fn batch_oracle_round_trips_params() {
        let (mut net, x, y) = toy_problem();
        let params = net.params();
        let mut oracle = BatchOracle::new(&mut net, &x, &y);
        let (loss, grads) = oracle.grad(&params).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(grads.len(), params.len());
    }

    #[test]
    fn shard_range_view_matches_manual_narrow() {
        let (mut net, x, y) = toy_problem();
        let params = net.params();
        let (loss_view, grads_view) = {
            let mut oracle = BatchOracle::new(&mut net, &x, &y).with_range(4, 8).unwrap();
            oracle.grad(&params).unwrap()
        };
        let shard_x = x.narrow(4, 8).unwrap();
        let shard_y = &y[4..12];
        let mut oracle = BatchOracle::new(&mut net, &shard_x, shard_y);
        let (loss_manual, grads_manual) = oracle.grad(&params).unwrap();
        assert_eq!(loss_view.to_bits(), loss_manual.to_bits());
        for (a, b) in grads_view.iter().zip(&grads_manual) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn shard_range_rejects_bad_bounds() {
        let (mut net, x, y) = toy_problem();
        assert!(BatchOracle::new(&mut net, &x, &y)
            .with_range(10, 10)
            .is_err());
        let (mut net, x, y) = toy_problem();
        assert!(BatchOracle::new(&mut net, &x, &y).with_range(0, 0).is_err());
    }

    #[test]
    fn train_step_reduces_loss_for_all_methods() {
        for method in [
            Method::Sgd,
            Method::FirstOrderOnly { h: 0.01 },
            Method::GradL1 { lambda: 0.01 },
            Method::Hero {
                h: 0.01,
                gamma: 0.1,
            },
        ] {
            let (mut net, x, y) = toy_problem();
            let mut opt = Optimizer::new(method);
            let first = train_step(&mut net, &mut opt, &x, &y, 0.05).unwrap();
            let mut last = first;
            for _ in 0..30 {
                last = train_step(&mut net, &mut opt, &x, &y, 0.05).unwrap();
            }
            assert!(
                last.loss < first.loss,
                "{}: loss {} !< {}",
                method.name(),
                last.loss,
                first.loss
            );
        }
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_data() {
        let (mut net, x, y) = toy_problem();
        let mut opt = Optimizer::new(Method::Hero {
            h: 0.01,
            gamma: 0.05,
        });
        for _ in 0..60 {
            train_step(&mut net, &mut opt, &x, &y, 0.05).unwrap();
        }
        let acc = evaluate_accuracy(&mut net, &x, &y, 8).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn train_step_installs_updated_params() {
        let (mut net, x, y) = toy_problem();
        let before = net.params();
        let mut opt = Optimizer::new(Method::Sgd);
        train_step(&mut net, &mut opt, &x, &y, 0.1).unwrap();
        let after = net.params();
        assert_ne!(before, after);
    }
}
