//! Quantization throughput: per-tensor and whole-network fake quantization
//! across bit widths and schemes (the machinery behind Fig. 1 / Tables 3).

use hero_bench::timing::{default_budget, time_op};
use hero_core::experiment::model_config;
use hero_data::Preset;
use hero_nn::models::ModelKind;
use hero_quant::{quantize_params, quantize_tensor, QuantScheme};
use hero_tensor::rng::StdRng;
use hero_tensor::Tensor;

fn main() {
    let budget = default_budget();

    let w = Tensor::from_fn([64, 256], |i| {
        ((i[0] * 31 + i[1] * 7) % 97) as f32 / 48.0 - 1.0
    });
    for bits in [2u8, 4, 8] {
        let scheme = QuantScheme::symmetric(bits).unwrap();
        time_op(
            &format!("quantize_tensor_16k/symmetric_{bits}"),
            budget,
            || {
                std::hint::black_box(quantize_tensor(&w, &scheme).unwrap());
            },
        );
    }
    for (name, scheme) in [
        ("asymmetric_8", QuantScheme::asymmetric(8).unwrap()),
        (
            "per_channel_4",
            QuantScheme::symmetric(4).unwrap().per_channel(),
        ),
        (
            "percentile_4",
            QuantScheme::symmetric(4).unwrap().with_percentile(0.999),
        ),
    ] {
        time_op(&format!("quantize_tensor_16k/{name}"), budget, || {
            std::hint::black_box(quantize_tensor(&w, &scheme).unwrap());
        });
    }

    for model in [ModelKind::Resnet, ModelKind::Mobilenet, ModelKind::Vgg] {
        let net = model.build(model_config(Preset::C10), &mut StdRng::seed_from_u64(0));
        let scheme = QuantScheme::symmetric(4).unwrap();
        time_op(
            &format!("quantize_network/{}", model.paper_name()),
            budget,
            || {
                std::hint::black_box(quantize_params(&net, &scheme).unwrap());
            },
        );
    }
}
