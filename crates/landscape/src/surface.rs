//! 1-D and 2-D loss-surface scans around a weight configuration (Fig. 3).

use hero_tensor::{Result, Tensor, TensorError};

/// A loss evaluator over parameter lists — any closure mapping parameters
/// to a scalar loss.
pub trait LossOracle {
    /// Evaluates the loss at `params`.
    ///
    /// # Errors
    ///
    /// Returns an error for incompatible parameter lists.
    fn loss(&mut self, params: &[Tensor]) -> Result<f32>;
}

impl<F> LossOracle for F
where
    F: FnMut(&[Tensor]) -> Result<f32>,
{
    fn loss(&mut self, params: &[Tensor]) -> Result<f32> {
        self(params)
    }
}

/// A 2-D loss-surface scan over `W + α·d1 + β·d2`.
#[derive(Debug, Clone)]
pub struct SurfaceScan {
    /// Coefficient grid along the first direction (rows).
    pub alphas: Vec<f32>,
    /// Coefficient grid along the second direction (columns).
    pub betas: Vec<f32>,
    /// Loss at each `(alpha, beta)`, row-major `losses[i][j]`.
    pub losses: Vec<Vec<f32>>,
    /// Loss at the centre `(0, 0)`.
    pub center_loss: f32,
}

impl SurfaceScan {
    /// Fraction of grid points whose loss stays within `threshold` of the
    /// centre loss — the "area inside the inner contour" statistic used to
    /// compare Fig. 3(a) vs (b). Larger is flatter.
    pub fn low_loss_fraction(&self, threshold: f32) -> f32 {
        let total: usize = self.losses.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let within = self
            .losses
            .iter()
            .flatten()
            .filter(|&&l| l <= self.center_loss + threshold)
            .count();
        within as f32 / total as f32
    }

    /// The largest coefficient radius `r` such that every grid point with
    /// `max(|α|,|β|) ≤ r` stays within `threshold` of the centre loss.
    pub fn flat_radius(&self, threshold: f32) -> f32 {
        let mut best: f32 = 0.0;
        // Grow r over the sorted distinct grid radii until a point within r
        // exceeds the threshold.
        let mut radii: Vec<f32> = self
            .alphas
            .iter()
            .flat_map(|&a| self.betas.iter().map(move |&b| a.abs().max(b.abs())))
            .collect();
        radii.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        radii.dedup();
        for &r in &radii {
            let ok = self.alphas.iter().enumerate().all(|(i, &a)| {
                self.betas.iter().enumerate().all(|(j, &b)| {
                    a.abs().max(b.abs()) > r || self.losses[i][j] <= self.center_loss + threshold
                })
            });
            if ok {
                best = r;
            } else {
                break;
            }
        }
        best
    }

    /// Renders the scan as an ASCII contour map (one char per cell):
    /// `#` within `threshold` of centre, `+` within `4×threshold`, `.`
    /// beyond. Useful for eyeballing Fig. 3 shapes in a terminal.
    pub fn ascii_contour(&self, threshold: f32) -> String {
        let mut out = String::new();
        for row in &self.losses {
            for &l in row {
                let d = l - self.center_loss;
                out.push(if d <= threshold {
                    '#'
                } else if d <= 4.0 * threshold {
                    '+'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

/// Evaluates the loss on a symmetric grid `[-radius, radius]²` of
/// `steps × steps` points along two directions.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for an empty grid or misaligned
/// directions, and propagates oracle errors.
pub fn scan_2d(
    oracle: &mut dyn LossOracle,
    params: &[Tensor],
    d1: &[Tensor],
    d2: &[Tensor],
    radius: f32,
    steps: usize,
) -> Result<SurfaceScan> {
    if steps < 2 {
        return Err(TensorError::InvalidArgument(
            "surface scan needs >= 2 steps".into(),
        ));
    }
    if d1.len() != params.len() || d2.len() != params.len() {
        return Err(TensorError::InvalidArgument(
            "directions must align with params".into(),
        ));
    }
    let coeffs: Vec<f32> = (0..steps)
        .map(|i| -radius + 2.0 * radius * i as f32 / (steps - 1) as f32)
        .collect();
    let mut losses = Vec::with_capacity(steps);
    let mut shifted: Vec<Tensor> = params.to_vec();
    for &a in &coeffs {
        let mut row = Vec::with_capacity(steps);
        for &b in &coeffs {
            for ((s, p), (v1, v2)) in shifted.iter_mut().zip(params).zip(d1.iter().zip(d2)) {
                *s = p.clone();
                s.axpy(a, v1)?;
                s.axpy(b, v2)?;
            }
            row.push(oracle.loss(&shifted)?);
        }
        losses.push(row);
    }
    let center_loss = oracle.loss(params)?;
    Ok(SurfaceScan {
        alphas: coeffs.clone(),
        betas: coeffs,
        losses,
        center_loss,
    })
}

/// Evaluates the loss along a single direction at the given coefficients.
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn scan_1d(
    oracle: &mut dyn LossOracle,
    params: &[Tensor],
    d: &[Tensor],
    coeffs: &[f32],
) -> Result<Vec<f32>> {
    let mut out = Vec::with_capacity(coeffs.len());
    let mut shifted: Vec<Tensor> = params.to_vec();
    for &a in coeffs {
        for ((s, p), v) in shifted.iter_mut().zip(params).zip(d) {
            *s = p.clone();
            s.axpy(a, v)?;
        }
        out.push(oracle.loss(&shifted)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl with controllable curvature per coordinate.
    fn bowl(curv: Vec<f32>) -> impl FnMut(&[Tensor]) -> Result<f32> {
        move |ps: &[Tensor]| {
            let x = &ps[0];
            Ok(x.data()
                .iter()
                .zip(&curv)
                .map(|(&v, &k)| 0.5 * k * v * v)
                .sum())
        }
    }

    #[test]
    fn scan_2d_of_a_bowl_is_symmetric_with_center_minimum() {
        let params = vec![Tensor::zeros([2])];
        let d1 = vec![Tensor::from_vec(vec![1.0, 0.0], [2]).unwrap()];
        let d2 = vec![Tensor::from_vec(vec![0.0, 1.0], [2]).unwrap()];
        let mut oracle = bowl(vec![2.0, 2.0]);
        let scan = scan_2d(&mut oracle, &params, &d1, &d2, 1.0, 5).unwrap();
        assert_eq!(scan.losses.len(), 5);
        assert_eq!(scan.center_loss, 0.0);
        // Centre cell is the minimum.
        assert_eq!(scan.losses[2][2], 0.0);
        // Four corners are equal by symmetry.
        assert!((scan.losses[0][0] - scan.losses[4][4]).abs() < 1e-6);
        assert!((scan.losses[0][4] - scan.losses[4][0]).abs() < 1e-6);
        // Corner loss = 0.5*2*(1+1) = 2.
        assert!((scan.losses[0][0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn flat_bowl_has_larger_low_loss_fraction() {
        let params = vec![Tensor::zeros([2])];
        let d1 = vec![Tensor::from_vec(vec![1.0, 0.0], [2]).unwrap()];
        let d2 = vec![Tensor::from_vec(vec![0.0, 1.0], [2]).unwrap()];
        let sharp = scan_2d(&mut bowl(vec![50.0, 50.0]), &params, &d1, &d2, 1.0, 11).unwrap();
        let flat = scan_2d(&mut bowl(vec![0.5, 0.5]), &params, &d1, &d2, 1.0, 11).unwrap();
        let thr = 0.1;
        assert!(flat.low_loss_fraction(thr) > sharp.low_loss_fraction(thr));
        assert!(flat.flat_radius(thr) > sharp.flat_radius(thr));
    }

    #[test]
    fn flat_radius_matches_analytic_bowl() {
        // loss = 0.5*k*(a^2+b^2); within threshold t along the worst corner
        // (a=b=r): k r^2 <= t. k=2, t=0.5 -> r <= 0.5.
        let params = vec![Tensor::zeros([2])];
        let d1 = vec![Tensor::from_vec(vec![1.0, 0.0], [2]).unwrap()];
        let d2 = vec![Tensor::from_vec(vec![0.0, 1.0], [2]).unwrap()];
        let scan = scan_2d(&mut bowl(vec![2.0, 2.0]), &params, &d1, &d2, 1.0, 21).unwrap();
        let r = scan.flat_radius(0.5);
        assert!((r - 0.5).abs() <= 0.1, "flat radius {r}");
    }

    #[test]
    fn scan_1d_traces_parabola() {
        let params = vec![Tensor::zeros([1])];
        let d = vec![Tensor::ones([1])];
        let coeffs = [-1.0, 0.0, 1.0];
        let vals = scan_1d(&mut bowl(vec![4.0]), &params, &d, &coeffs).unwrap();
        assert_eq!(vals, vec![2.0, 0.0, 2.0]);
    }

    #[test]
    fn ascii_contour_marks_flat_center() {
        let params = vec![Tensor::zeros([2])];
        let d1 = vec![Tensor::from_vec(vec![1.0, 0.0], [2]).unwrap()];
        let d2 = vec![Tensor::from_vec(vec![0.0, 1.0], [2]).unwrap()];
        let scan = scan_2d(&mut bowl(vec![8.0, 8.0]), &params, &d1, &d2, 1.0, 7).unwrap();
        let art = scan.ascii_contour(0.2);
        assert_eq!(art.lines().count(), 7);
        let center_row: Vec<&str> = art.lines().collect();
        assert!(center_row[3].contains('#'));
        assert!(art.contains('.'));
    }

    #[test]
    fn scan_validates_arguments() {
        let params = vec![Tensor::zeros([1])];
        let d = vec![Tensor::ones([1])];
        assert!(scan_2d(&mut bowl(vec![1.0]), &params, &d, &d, 1.0, 1).is_err());
        assert!(scan_2d(&mut bowl(vec![1.0]), &params, &[], &d, 1.0, 3).is_err());
    }
}
