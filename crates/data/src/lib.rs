//! # hero-data
//!
//! Synthetic vision datasets for the HERO (DAC 2022) reproduction:
//! procedurally generated class-texture images standing in for CIFAR-10,
//! CIFAR-100 and ImageNet (the environment has no dataset access — see
//! DESIGN.md §1), plus the paper's symmetric label-noise model (§5.2),
//! pad-crop/flip augmentation (§5.1) and shuffled mini-batch loading.
//!
//! # Examples
//!
//! ```
//! use hero_data::{Loader, Preset};
//!
//! let (train, test) = Preset::C10.load(0.1);
//! assert_eq!(train.classes, 10);
//! let mut loader = Loader::new(16, 0);
//! let batches = loader.epoch(&train);
//! assert_eq!(batches.iter().map(|b| b.labels.len()).sum::<usize>(), train.len());
//! # let _ = test;
//! ```

#![warn(missing_docs)]

mod augment;
mod corrupt;
mod loader;
mod noise;
mod presets;
mod synth;

pub use augment::Augment;
pub use corrupt::Corruption;
pub use loader::{shard_bounds, Batch, Loader};
pub use noise::{inject_symmetric_noise, label_disagreement};
pub use presets::Preset;
pub use synth::{Dataset, SynthGenerator, SynthSpec};
