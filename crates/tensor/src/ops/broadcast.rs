//! NumPy-style broadcasting for binary operations.

use crate::error::Result;
use crate::pool;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Combines two tensors element-wise under NumPy broadcasting rules.
    ///
    /// Trailing axes are aligned; an axis of size 1 stretches to match its
    /// counterpart. The output has the broadcast shape.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::BroadcastMismatch`] if the shapes are
    /// incompatible.
    ///
    /// # Examples
    ///
    /// ```
    /// use hero_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), hero_tensor::TensorError> {
    /// let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
    /// let row = Tensor::from_vec(vec![10.0, 20.0], [2])?;
    /// let out = m.broadcast_op(&row, |a, b| a + b)?;
    /// assert_eq!(out.data(), &[11.0, 22.0, 13.0, 24.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn broadcast_op(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        // Fast path: identical shapes.
        if self.shape() == other.shape() {
            return self.zip(other, f);
        }
        let out_shape = self.shape().broadcast_with(other.shape())?;
        let mut out = pool::lease_raw(out_shape.numel());
        let a_idx = BroadcastIndexer::new(self.shape(), &out_shape);
        let b_idx = BroadcastIndexer::new(other.shape(), &out_shape);
        // Odometer walk: offsets advance incrementally instead of being
        // recomputed (and a multi-index allocated) per element.
        let dims = out_shape.dims();
        let rank = out_shape.rank();
        let mut idx = vec![0usize; rank];
        let (mut a_off, mut b_off) = (0usize, 0usize);
        for _ in 0..out_shape.numel() {
            out.push(f(self.data()[a_off], other.data()[b_off]));
            for ax in (0..rank).rev() {
                idx[ax] += 1;
                a_off += a_idx.strides[ax];
                b_off += b_idx.strides[ax];
                if idx[ax] < dims[ax] {
                    break;
                }
                a_off -= dims[ax] * a_idx.strides[ax];
                b_off -= dims[ax] * b_idx.strides[ax];
                idx[ax] = 0;
            }
        }
        Tensor::from_vec(out, out_shape)
    }

    /// Broadcast addition.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn badd(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a + b)
    }

    /// Broadcast subtraction.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn bsub(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a - b)
    }

    /// Broadcast multiplication.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn bmul(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a * b)
    }

    /// Broadcast division.
    ///
    /// # Errors
    ///
    /// See [`Tensor::broadcast_op`].
    pub fn bdiv(&self, other: &Tensor) -> Result<Tensor> {
        self.broadcast_op(other, |a, b| a / b)
    }

    /// Reduces (sums) a broadcast-shaped gradient back down to `target`,
    /// the adjoint of broadcasting. Axes that were stretched from size 1
    /// are summed; leading axes that were added are summed away.
    ///
    /// # Errors
    ///
    /// Returns an error if `self`'s shape is not a valid broadcast of
    /// `target`.
    pub fn reduce_to_shape(&self, target: &Shape) -> Result<Tensor> {
        if self.shape() == target {
            return Ok(self.clone());
        }
        // Verify compatibility (target must broadcast to self's shape).
        let check = target.broadcast_with(self.shape())?;
        if &check != self.shape() {
            return Err(crate::TensorError::BroadcastMismatch {
                left: self.dims().to_vec(),
                right: target.dims().to_vec(),
            });
        }
        let mut out = pool::lease(target.numel());
        let indexer = BroadcastIndexer::new(target, self.shape());
        let dims = self.dims();
        let rank = self.rank();
        let mut idx = vec![0usize; rank];
        let mut off = 0usize;
        for flat in 0..self.numel() {
            out[off] += self.data()[flat];
            for ax in (0..rank).rev() {
                idx[ax] += 1;
                off += indexer.strides[ax];
                if idx[ax] < dims[ax] {
                    break;
                }
                off -= dims[ax] * indexer.strides[ax];
                idx[ax] = 0;
            }
        }
        Tensor::from_vec(out, target.clone())
    }
}

/// Maps multi-indices in an output (broadcast) shape to flat offsets in a
/// smaller source shape.
struct BroadcastIndexer {
    /// Stride to apply per output axis (0 where the source axis is stretched
    /// or absent).
    strides: Vec<usize>,
}

impl BroadcastIndexer {
    fn new(src: &Shape, out: &Shape) -> Self {
        let src_strides = src.strides();
        let pad = out.rank() - src.rank();
        let mut strides = vec![0; out.rank()];
        for (i, &stride) in src_strides.iter().enumerate() {
            strides[i + pad] = if src.dims()[i] == 1 { 0 } else { stride };
        }
        BroadcastIndexer { strides }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_row_over_matrix() {
        let m = Tensor::arange(6).reshape([2, 3]).unwrap();
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], [3]).unwrap();
        let out = m.badd(&row).unwrap();
        assert_eq!(out.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn broadcast_column_over_matrix() {
        let m = Tensor::arange(6).reshape([2, 3]).unwrap();
        let col = Tensor::from_vec(vec![100.0, 200.0], [2, 1]).unwrap();
        let out = m.badd(&col).unwrap();
        assert_eq!(out.data(), &[100.0, 101.0, 102.0, 203.0, 204.0, 205.0]);
    }

    #[test]
    fn broadcast_scalar_tensor() {
        let m = Tensor::arange(4).reshape([2, 2]).unwrap();
        let s = Tensor::scalar(2.0);
        assert_eq!(m.bmul(&s).unwrap().data(), &[0.0, 2.0, 4.0, 6.0]);
        assert_eq!(m.bdiv(&s).unwrap().data(), &[0.0, 0.5, 1.0, 1.5]);
        assert_eq!(m.bsub(&s).unwrap().data(), &[-2.0, -1.0, 0.0, 1.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 2]);
        assert!(a.badd(&b).is_err());
    }

    #[test]
    fn reduce_to_shape_sums_stretched_axes() {
        let g = Tensor::ones([2, 3]);
        let red = g.reduce_to_shape(&Shape::from([3])).unwrap();
        assert_eq!(red.data(), &[2.0, 2.0, 2.0]);
        let red = g.reduce_to_shape(&Shape::from([2, 1])).unwrap();
        assert_eq!(red.data(), &[3.0, 3.0]);
        let red = g.reduce_to_shape(&Shape::scalar()).unwrap();
        assert_eq!(red.item().unwrap(), 6.0);
    }

    #[test]
    fn reduce_to_shape_is_identity_when_equal() {
        let g = Tensor::arange(4).reshape([2, 2]).unwrap();
        assert_eq!(g.reduce_to_shape(g.shape()).unwrap(), g);
    }

    #[test]
    fn reduce_to_shape_rejects_incompatible() {
        let g = Tensor::ones([2, 3]);
        assert!(g.reduce_to_shape(&Shape::from([4])).is_err());
    }

    #[test]
    fn broadcast_then_reduce_is_adjoint() {
        // <broadcast(x), y> == <x, reduce(y)> for the sum-broadcast pair.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).unwrap();
        let y = Tensor::arange(6).reshape([2, 3]).unwrap();
        let broadcast_x = Tensor::zeros([2, 3]).badd(&x).unwrap();
        let lhs = broadcast_x.dot(&y).unwrap();
        let rhs = x.dot(&y.reduce_to_shape(x.shape()).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-5);
    }
}
