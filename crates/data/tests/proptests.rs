//! Property-based tests for dataset generation, label noise and loading.

use hero_data::{inject_symmetric_noise, Loader, SynthGenerator, SynthSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = SynthSpec> {
    (2usize..8, 4usize..10, 0.0f32..1.0, 0usize..2, 0u64..1000).prop_map(
        |(classes, hw, noise, shift, seed)| SynthSpec {
            classes,
            channels: 3,
            hw,
            noise_std: noise,
            max_shift: shift,
            superclasses: 0,
            sample_texture: 0.0,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_data_is_finite_and_balanced(spec in arb_spec(), n_mult in 1usize..5) {
        let n = spec.classes * n_mult;
        let d = SynthGenerator::new(spec).generate(n, 1);
        prop_assert_eq!(d.len(), n);
        prop_assert!(d.images.is_finite());
        for class in 0..spec.classes {
            prop_assert_eq!(d.labels.iter().filter(|&&l| l == class).count(), n_mult);
        }
    }

    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        let g1 = SynthGenerator::new(spec);
        let g2 = SynthGenerator::new(spec);
        let a = g1.generate(spec.classes * 2, 7);
        let b = g2.generate(spec.classes * 2, 7);
        prop_assert_eq!(a.images, b.images);
    }

    #[test]
    fn noise_injection_corrupts_requested_fraction(
        spec in arb_spec(), ratio in 0.0f32..1.0, seed in 0u64..100
    ) {
        let n = spec.classes * 10;
        let mut d = SynthGenerator::new(spec).generate(n, 1);
        let chosen = inject_symmetric_noise(&mut d, ratio, seed);
        prop_assert_eq!(chosen.len(), (ratio * n as f32).round() as usize);
        prop_assert!(d.labels.iter().all(|&l| l < spec.classes));
    }

    #[test]
    fn loader_partitions_every_epoch(
        spec in arb_spec(), batch in 1usize..20, seed in 0u64..100
    ) {
        let n = spec.classes * 7;
        let d = SynthGenerator::new(spec).generate(n, 1);
        let mut loader = Loader::new(batch, seed);
        for _ in 0..3 {
            let batches = loader.epoch(&d);
            let total: usize = batches.iter().map(|b| b.labels.len()).sum();
            prop_assert_eq!(total, n);
            prop_assert!(batches.iter().all(|b| b.labels.len() <= batch));
            // All images keep the dataset's per-image shape.
            for b in &batches {
                prop_assert_eq!(&b.images.dims()[1..], &[3, spec.hw, spec.hw]);
            }
        }
    }
}
