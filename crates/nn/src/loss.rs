//! Loss evaluation and accuracy metrics over a network.

use crate::module::Network;
use hero_autodiff::Graph;
use hero_tensor::{Result, Tensor};

/// Loss value and per-parameter gradients from one forward/backward pass.
#[derive(Debug)]
pub struct LossAndGrads {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient for every parameter tensor, canonical order.
    pub grads: Vec<Tensor>,
}

/// Runs a train-mode forward/backward pass, returning the batch loss and
/// per-parameter gradients in the network's canonical order.
///
/// This is the single gradient-evaluation primitive all training methods
/// (SGD, SAM, GRAD-L1, HERO) are built from; HERO calls it up to three
/// times per step. The graph and every intermediate adjoint are recycled
/// into the thread-local scratch pool before returning, so repeated calls
/// re-lease the same buffers instead of allocating (the zero-allocation
/// hot path — see `hero_tensor::pool`).
///
/// # Errors
///
/// Returns shape errors if the batch is incompatible with the network or
/// labels are invalid.
pub fn loss_and_grads(net: &mut Network, x: &Tensor, labels: &[usize]) -> Result<LossAndGrads> {
    let mut g = Graph::new();
    let fwd = hero_obs::span("forward");
    let (logits, vars) = net.forward(&mut g, x, true)?;
    let loss = g.cross_entropy(logits, labels)?;
    let loss_value = g.value(loss).item()?;
    drop(fwd);
    let _bwd = hero_obs::span("backward");
    let mut grads = g.backward(loss)?;
    let params = net.params();
    let grad_tensors = vars
        .iter()
        .zip(&params)
        .map(|(v, p)| {
            grads
                .take(*v)
                .unwrap_or_else(|| Tensor::zeros(p.shape().clone()))
        })
        .collect();
    grads.recycle();
    g.reset();
    Ok(LossAndGrads {
        loss: loss_value,
        grads: grad_tensors,
    })
}

/// Like [`loss_and_grads`] but with label smoothing `eps` (the target mixes
/// `1 - eps` on the true class with uniform mass) — a classic
/// generalization baseline kept alongside HERO for comparisons.
///
/// # Errors
///
/// Returns shape errors if the batch is incompatible with the network or
/// `eps` is outside `[0, 1)`.
pub fn loss_and_grads_smoothed(
    net: &mut Network,
    x: &Tensor,
    labels: &[usize],
    eps: f32,
) -> Result<LossAndGrads> {
    let mut g = Graph::new();
    let fwd = hero_obs::span("forward");
    let (logits, vars) = net.forward(&mut g, x, true)?;
    let loss = g.cross_entropy_smoothed(logits, labels, eps)?;
    let loss_value = g.value(loss).item()?;
    drop(fwd);
    let _bwd = hero_obs::span("backward");
    let mut grads = g.backward(loss)?;
    let params = net.params();
    let grad_tensors = vars
        .iter()
        .zip(&params)
        .map(|(v, p)| {
            grads
                .take(*v)
                .unwrap_or_else(|| Tensor::zeros(p.shape().clone()))
        })
        .collect();
    grads.recycle();
    g.reset();
    Ok(LossAndGrads {
        loss: loss_value,
        grads: grad_tensors,
    })
}

/// Computes the mean cross-entropy loss in eval mode (no gradients).
///
/// # Errors
///
/// Returns shape errors if the batch is incompatible with the network.
pub fn eval_loss(net: &mut Network, x: &Tensor, labels: &[usize]) -> Result<f32> {
    let _obs = hero_obs::span("forward");
    let mut g = Graph::new();
    let (logits, _) = net.forward(&mut g, x, false)?;
    let loss = g.cross_entropy(logits, labels)?;
    let value = g.value(loss).item();
    g.reset();
    value
}

/// Fraction of rows whose argmax matches the label.
///
/// # Errors
///
/// Returns shape errors if `logits` is not `(batch, classes)` with
/// `batch == labels.len()`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(hero_tensor::TensorError::InvalidArgument(format!(
            "{} predictions for {} labels",
            preds.len(),
            labels.len()
        )));
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / labels.len().max(1) as f32)
}

/// Evaluates classification accuracy over a dataset in mini-batches.
///
/// # Errors
///
/// Returns shape errors if any batch is incompatible with the network.
pub fn evaluate_accuracy(
    net: &mut Network,
    xs: &Tensor,
    labels: &[usize],
    batch: usize,
) -> Result<f32> {
    let n = xs.dims()[0];
    let mut correct = 0usize;
    let mut start = 0;
    while start < n {
        let len = batch.min(n - start);
        let xb = xs.narrow(start, len)?;
        let logits = net.predict(&xb)?;
        let preds = logits.argmax_rows()?;
        correct += preds
            .iter()
            .zip(&labels[start..start + len])
            .filter(|(p, l)| p == l)
            .count();
        start += len;
    }
    Ok(correct as f32 / n.max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mlp, ModelConfig};
    use hero_tensor::rng::StdRng;

    fn tiny_net() -> Network {
        let cfg = ModelConfig {
            classes: 3,
            in_channels: 1,
            input_hw: 2,
            width: 4,
        };
        mlp(cfg, &[8], &mut StdRng::seed_from_u64(3))
    }

    fn batch() -> (Tensor, Vec<usize>) {
        let x = Tensor::from_fn([4, 1, 2, 2], |i| (i.iter().sum::<usize>() % 3) as f32 - 1.0);
        (x, vec![0, 1, 2, 0])
    }

    #[test]
    fn loss_and_grads_aligns_with_params() {
        let mut net = tiny_net();
        let (x, y) = batch();
        let out = loss_and_grads(&mut net, &x, &y).unwrap();
        let params = net.params();
        assert_eq!(out.grads.len(), params.len());
        for (g, p) in out.grads.iter().zip(&params) {
            assert_eq!(g.shape(), p.shape());
        }
        assert!(out.loss > 0.0);
        assert!(out.loss.is_finite());
    }

    #[test]
    fn gradient_descent_on_grads_reduces_loss() {
        let mut net = tiny_net();
        let (x, y) = batch();
        let first = loss_and_grads(&mut net, &x, &y).unwrap();
        let mut params = net.params();
        for (p, g) in params.iter_mut().zip(&first.grads) {
            p.axpy(-0.5, g).unwrap();
        }
        net.set_params(&params).unwrap();
        let second = loss_and_grads(&mut net, &x, &y).unwrap();
        assert!(
            second.loss < first.loss,
            "{} !< {}",
            second.loss,
            first.loss
        );
    }

    #[test]
    fn eval_loss_matches_magnitude() {
        let mut net = tiny_net();
        let (x, y) = batch();
        let l = eval_loss(&mut net, &x, &y).unwrap();
        assert!(l > 0.0 && l < 10.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], [3, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 1]).unwrap(), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 0]).unwrap(), 1.0);
        assert!(accuracy(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn evaluate_accuracy_batches_consistently() {
        let mut net = tiny_net();
        let (x, y) = batch();
        let a1 = evaluate_accuracy(&mut net, &x, &y, 2).unwrap();
        let a2 = evaluate_accuracy(&mut net, &x, &y, 4).unwrap();
        let a3 = evaluate_accuracy(&mut net, &x, &y, 3).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(a1, a3);
        assert!((0.0..=1.0).contains(&a1));
    }
}

#[cfg(test)]
mod smoothing_tests {
    use super::*;
    use crate::models::{mlp, ModelConfig};
    use hero_tensor::rng::StdRng;

    #[test]
    fn smoothed_loss_matches_plain_at_zero_eps() {
        let cfg = ModelConfig {
            classes: 3,
            in_channels: 1,
            input_hw: 2,
            width: 4,
        };
        let mut net = mlp(cfg, &[8], &mut StdRng::seed_from_u64(3));
        let x = Tensor::from_fn([4, 1, 2, 2], |i| (i.iter().sum::<usize>() % 3) as f32 - 1.0);
        let y = vec![0, 1, 2, 0];
        let plain = loss_and_grads(&mut net, &x, &y).unwrap();
        let smoothed = loss_and_grads_smoothed(&mut net, &x, &y, 0.0).unwrap();
        assert!((plain.loss - smoothed.loss).abs() < 1e-5);
    }

    #[test]
    fn smoothing_raises_loss_on_confident_predictions() {
        // Train briefly, then the smoothed loss exceeds the plain loss
        // (confident correct predictions pay the uniform-mass penalty).
        let cfg = ModelConfig {
            classes: 3,
            in_channels: 1,
            input_hw: 2,
            width: 4,
        };
        let mut net = mlp(cfg, &[12], &mut StdRng::seed_from_u64(4));
        let x = Tensor::from_fn([6, 1, 2, 2], |i| (i[0] % 3) as f32 - 1.0);
        let y: Vec<usize> = (0..6).map(|i| i % 3).collect();
        for _ in 0..40 {
            let out = loss_and_grads(&mut net, &x, &y).unwrap();
            let mut ps = net.params();
            for (p, g) in ps.iter_mut().zip(&out.grads) {
                p.axpy(-0.3, g).unwrap();
            }
            net.set_params(&ps).unwrap();
        }
        let plain = loss_and_grads(&mut net, &x, &y).unwrap();
        let smoothed = loss_and_grads_smoothed(&mut net, &x, &y, 0.2).unwrap();
        assert!(smoothed.loss > plain.loss);
    }
}
