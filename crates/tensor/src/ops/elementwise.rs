//! Element-wise arithmetic and transcendental operations.

use crate::error::{Result, TensorError};
use crate::pool;
use crate::tensor::Tensor;

impl Tensor {
    /// Applies `f` to every element, producing a new tensor (storage leased
    /// from the scratch pool).
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = pool::lease_raw(self.numel());
        data.extend(self.data().iter().map(|&v| f(v)));
        Tensor::from_vec(data, self.shape().clone()).expect("same volume")
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Combines two same-shape tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ. Use
    /// [`Tensor::broadcast_op`] for broadcasting semantics.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let mut data = pool::lease_raw(self.numel());
        data.extend(self.data().iter().zip(other.data()).map(|(&a, &b)| f(a, b)));
        Tensor::from_vec(data, self.shape().clone())
    }

    /// Element-wise sum of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise quotient of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a / b)
    }

    /// Adds `other * scale` into `self` in place (the BLAS `axpy` pattern,
    /// used heavily by optimizers).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, scale: f32, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Multiplies every element by a scalar in place.
    pub fn scale_in_place(&mut self, s: f32) {
        self.map_in_place(|v| v * s);
    }

    /// Element-wise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Element-wise sign (-1, 0, or +1).
    pub fn signum(&self) -> Tensor {
        self.map(|v| if v == 0.0 { 0.0 } else { v.signum() })
    }

    /// Element-wise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Element-wise reciprocal.
    pub fn recip(&self) -> Tensor {
        self.map(f32::recip)
    }

    /// Element-wise integer power.
    pub fn powi(&self, n: i32) -> Tensor {
        self.map(|v| v.powi(n))
    }

    /// Element-wise max with a scalar (e.g. `relu` via `clamp_min(0.0)`).
    pub fn clamp_min(&self, lo: f32) -> Tensor {
        self.map(|v| v.max(lo))
    }

    /// Element-wise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Element-wise maximum of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn maximum(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, f32::max)
    }

    /// Element-wise minimum of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn minimum(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, f32::min)
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.numel() != other.numel() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), [v.len()]).unwrap()
    }

    #[test]
    fn binary_ops_work() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().data(), &[4.0, 2.5, 2.0]);
        assert!(a.add(&Tensor::zeros([2])).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(2.0, &t(&[3.0, 4.0])).unwrap();
        assert_eq!(a.data(), &[7.0, 9.0]);
        assert!(a.axpy(1.0, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn scalar_ops_work() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
        assert_eq!(a.scale(-2.0).data(), &[-2.0, 4.0]);
        assert_eq!(a.neg().data(), &[-1.0, 2.0]);
        assert_eq!(a.abs().data(), &[1.0, 2.0]);
        assert_eq!(a.signum().data(), &[1.0, -1.0]);
        assert_eq!(t(&[0.0]).signum().data(), &[0.0]);
    }

    #[test]
    fn transcendental_ops_work() {
        let a = t(&[0.0, 1.0]);
        assert!((a.exp().data()[1] - std::f32::consts::E).abs() < 1e-6);
        assert_eq!(t(&[1.0]).ln().data(), &[0.0]);
        assert_eq!(t(&[4.0]).sqrt().data(), &[2.0]);
        assert_eq!(t(&[3.0]).square().data(), &[9.0]);
        assert_eq!(t(&[2.0]).recip().data(), &[0.5]);
        assert_eq!(t(&[2.0]).powi(3).data(), &[8.0]);
    }

    #[test]
    fn clamp_family_works() {
        let a = t(&[-1.0, 0.5, 2.0]);
        assert_eq!(a.clamp_min(0.0).data(), &[0.0, 0.5, 2.0]);
        assert_eq!(a.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
        let b = t(&[0.0, 1.0, 1.0]);
        assert_eq!(a.maximum(&b).unwrap().data(), &[0.0, 1.0, 2.0]);
        assert_eq!(a.minimum(&b).unwrap().data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn dot_is_inner_product() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        // dot works across shapes with equal volume
        let m = Tensor::from_vec(vec![1.0; 4], [2, 2]).unwrap();
        assert_eq!(m.dot(&Tensor::ones([4])).unwrap(), 4.0);
        assert!(a.dot(&Tensor::zeros([2])).is_err());
    }

    #[test]
    fn map_in_place_mutates() {
        let mut a = t(&[1.0, 2.0]);
        a.map_in_place(|v| v * 10.0);
        assert_eq!(a.data(), &[10.0, 20.0]);
        a.scale_in_place(0.1);
        assert_eq!(a.data(), &[1.0, 2.0]);
    }
}
