//! Mixed-precision bit allocation guided by the paper's second-order
//! analysis.
//!
//! Theorem 3 says the tolerable ℓ∞ perturbation shrinks with the Hessian
//! eigenvalue `v` and grows with the bin width Δ; under the second-order
//! model the loss impact of quantizing layer `i` at `b` bits is
//! approximately `v_i · n_i · Δ_i(b)² / 24` (uniform rounding error has
//! variance Δ²/12, halved by symmetry of the quadratic form). Allocating a
//! global bit budget to minimize the summed impact is then a classic
//! greedy marginal-gain problem — the direction the paper points at with
//! its mixed-precision citations (§2.2, BSQ).

use crate::model::ModelQuantReport;
use crate::quantizer::{quant_error, quantize_tensor};
use crate::scheme::QuantScheme;
use hero_nn::Network;
use hero_tensor::{Result, Tensor, TensorError};

/// Per-layer inputs to the bit allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSensitivity {
    /// Layer (parameter tensor) name, for reporting.
    pub name: String,
    /// Number of weights in the layer.
    pub numel: usize,
    /// Maximum absolute weight (determines Δ at a given bit width).
    pub max_abs: f32,
    /// Curvature proxy for the layer (e.g. λ_max of the layer-restricted
    /// Hessian, or a gradient-magnitude heuristic). Must be ≥ 0.
    pub curvature: f32,
}

impl LayerSensitivity {
    /// Bin width of a symmetric uniform quantizer at `bits`.
    fn delta(&self, bits: u8) -> f32 {
        let half_levels = ((1u32 << bits) / 2).saturating_sub(1).max(1) as f32;
        self.max_abs / half_levels
    }

    /// Estimated second-order loss impact of quantizing at `bits`.
    fn impact(&self, bits: u8) -> f32 {
        let d = self.delta(bits);
        self.curvature * self.numel as f32 * d * d / 24.0
    }
}

/// Greedy mixed-precision allocation: distributes a budget of
/// `avg_bits × Σ numel` weight-bits across layers within
/// `[min_bits, max_bits]`, minimizing the estimated total loss impact.
///
/// Returns one bit width per layer, aligned with `layers`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the bounds are inverted,
/// zero, or the budget is infeasible (below `min_bits` everywhere).
pub fn allocate_bits(
    layers: &[LayerSensitivity],
    avg_bits: f32,
    min_bits: u8,
    max_bits: u8,
) -> Result<Vec<u8>> {
    if min_bits == 0 || min_bits > max_bits {
        return Err(TensorError::InvalidArgument(format!(
            "invalid bit bounds [{min_bits}, {max_bits}]"
        )));
    }
    let total_weights: usize = layers.iter().map(|l| l.numel).sum();
    let budget = (avg_bits * total_weights as f32).floor() as i64;
    let floor_cost: i64 = layers
        .iter()
        .map(|l| l.numel as i64 * min_bits as i64)
        .sum();
    if budget < floor_cost {
        return Err(TensorError::InvalidArgument(format!(
            "budget {avg_bits} avg bits is below the {min_bits}-bit floor"
        )));
    }
    let mut bits = vec![min_bits; layers.len()];
    let mut remaining = budget - floor_cost;
    // Greedy: repeatedly upgrade the layer with the best impact reduction
    // per weight-bit spent.
    loop {
        let mut best: Option<(usize, f32)> = None;
        for (i, layer) in layers.iter().enumerate() {
            if bits[i] >= max_bits || layer.numel as i64 > remaining {
                continue;
            }
            let gain = layer.impact(bits[i]) - layer.impact(bits[i] + 1);
            let per_cost = gain / layer.numel.max(1) as f32;
            if best.is_none_or(|(_, g)| per_cost > g) {
                best = Some((i, per_cost));
            }
        }
        let Some((i, _)) = best else { break };
        bits[i] += 1;
        remaining -= layers[i].numel as i64;
    }
    Ok(bits)
}

/// Builds layer sensitivities from a network snapshot using the
/// gradient-free proxy `curvature = 1` per layer (pure range/size
/// allocation). Callers with curvature estimates (e.g. from
/// `hero-hessian`) should overwrite the `curvature` fields.
pub fn network_sensitivities(net: &Network) -> Vec<LayerSensitivity> {
    let _obs = hero_obs::span("quant_sens");
    let params = net.params();
    let infos = net.param_infos();
    params
        .iter()
        .zip(&infos)
        .filter(|(_, info)| info.kind.is_quantizable())
        .map(|(p, info)| LayerSensitivity {
            name: info.name.clone(),
            numel: p.numel(),
            max_abs: p.norm_linf(),
            curvature: 1.0,
        })
        .collect()
}

/// Quantizes the network's weight tensors at per-layer bit widths (aligned
/// with the quantizable-tensor order of [`network_sensitivities`]),
/// returning the new parameter list and a report.
///
/// # Errors
///
/// Returns an error if `bits` does not match the number of quantizable
/// tensors.
pub fn quantize_params_mixed(
    net: &Network,
    bits: &[u8],
) -> Result<(Vec<Tensor>, ModelQuantReport)> {
    let _obs = hero_obs::span("quantize");
    let params = net.params();
    let infos = net.param_infos();
    let quantizable = infos.iter().filter(|i| i.kind.is_quantizable()).count();
    if bits.len() != quantizable {
        return Err(TensorError::InvalidArgument(format!(
            "{} bit widths for {quantizable} quantizable tensors",
            bits.len()
        )));
    }
    let mut out = Vec::with_capacity(params.len());
    let mut report = ModelQuantReport {
        scheme: QuantScheme::symmetric(bits.iter().copied().max().unwrap_or(8)),
        quantized_tensors: 0,
        skipped_tensors: 0,
        worst_linf: 0.0,
        max_bin_width: 0.0,
        mean_mse: 0.0,
    };
    let mut mse_acc = 0.0;
    let mut next_bit = bits.iter();
    for (p, info) in params.iter().zip(&infos) {
        if info.kind.is_quantizable() {
            let b = *next_bit.next().expect("counted above");
            let q = quantize_tensor(p, &QuantScheme::symmetric(b))?;
            let err = quant_error(p, &q.values)?;
            hero_obs::counters::QUANT_TENSORS.incr();
            report.quantized_tensors += 1;
            report.worst_linf = report.worst_linf.max(err.linf);
            report.max_bin_width = report.max_bin_width.max(q.max_bin_width());
            mse_acc += err.mse;
            out.push(q.values);
        } else {
            report.skipped_tensors += 1;
            out.push(p.clone());
        }
    }
    if report.quantized_tensors > 0 {
        report.mean_mse = mse_acc / report.quantized_tensors as f32;
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_nn::models::{mini_resnet, ModelConfig};
    use hero_tensor::rng::StdRng;

    fn layer(name: &str, numel: usize, max_abs: f32, curvature: f32) -> LayerSensitivity {
        LayerSensitivity {
            name: name.into(),
            numel,
            max_abs,
            curvature,
        }
    }

    #[test]
    fn uniform_layers_get_uniform_bits() {
        let layers = vec![
            layer("a", 100, 1.0, 1.0),
            layer("b", 100, 1.0, 1.0),
            layer("c", 100, 1.0, 1.0),
        ];
        let bits = allocate_bits(&layers, 6.0, 2, 8).unwrap();
        assert_eq!(bits, vec![6, 6, 6]);
    }

    #[test]
    fn sensitive_layers_get_more_bits() {
        let layers = vec![
            layer("robust", 100, 1.0, 0.01),
            layer("fragile", 100, 1.0, 100.0),
        ];
        let bits = allocate_bits(&layers, 5.0, 2, 8).unwrap();
        assert!(
            bits[1] > bits[0],
            "fragile {} should exceed robust {}",
            bits[1],
            bits[0]
        );
        // Budget respected.
        let spent: usize = layers
            .iter()
            .zip(&bits)
            .map(|(l, &b)| l.numel * b as usize)
            .sum();
        assert!(spent <= (5.0 * 200.0) as usize);
    }

    #[test]
    fn wide_range_layers_get_more_bits() {
        // Same curvature, but one layer has a 10x larger range => bigger Δ.
        let layers = vec![layer("narrow", 100, 0.1, 1.0), layer("wide", 100, 1.0, 1.0)];
        let bits = allocate_bits(&layers, 5.0, 2, 8).unwrap();
        assert!(bits[1] > bits[0]);
    }

    #[test]
    fn respects_min_and_max_bounds() {
        let layers = vec![layer("x", 10, 1.0, 1e9), layer("y", 10, 1.0, 1e-9)];
        let bits = allocate_bits(&layers, 16.0, 3, 6).unwrap();
        assert!(bits.iter().all(|&b| (3..=6).contains(&b)));
        // Huge budget saturates everything at max.
        assert_eq!(bits, vec![6, 6]);
    }

    #[test]
    fn validates_arguments() {
        let layers = vec![layer("x", 10, 1.0, 1.0)];
        assert!(allocate_bits(&layers, 4.0, 0, 8).is_err());
        assert!(allocate_bits(&layers, 4.0, 6, 4).is_err());
        assert!(allocate_bits(&layers, 1.0, 4, 8).is_err()); // below floor
    }

    #[test]
    fn network_sensitivities_cover_weights_only() {
        let net = mini_resnet(ModelConfig::default(), 1, &mut StdRng::seed_from_u64(0));
        let sens = network_sensitivities(&net);
        let weights = net
            .param_infos()
            .iter()
            .filter(|i| i.kind.is_quantizable())
            .count();
        assert_eq!(sens.len(), weights);
        assert!(sens.iter().all(|s| s.numel > 0 && s.max_abs > 0.0));
        assert!(sens.iter().all(|s| s.name.ends_with("weight")));
    }

    #[test]
    fn mixed_quantization_applies_per_layer_bits() {
        let net = mini_resnet(ModelConfig::default(), 1, &mut StdRng::seed_from_u64(1));
        let sens = network_sensitivities(&net);
        let bits = allocate_bits(&sens, 5.0, 2, 8).unwrap();
        let (qp, report) = quantize_params_mixed(&net, &bits).unwrap();
        assert_eq!(qp.len(), net.params().len());
        assert_eq!(report.quantized_tensors, sens.len());
        assert!(report.worst_linf <= report.max_bin_width / 2.0 + 1e-6);
        // Wrong arity is rejected.
        assert!(quantize_params_mixed(&net, &bits[..1]).is_err());
    }

    #[test]
    fn mixed_allocation_beats_uniform_at_equal_budget() {
        // Construct a synthetic two-layer case where the error model is
        // exact: impact ~ curvature * n * Δ²/24. Greedy should beat uniform.
        let layers = vec![layer("a", 1000, 1.0, 10.0), layer("b", 1000, 1.0, 0.1)];
        let mixed = allocate_bits(&layers, 4.0, 2, 8).unwrap();
        let uniform = vec![4u8, 4];
        let impact =
            |bits: &[u8]| -> f32 { layers.iter().zip(bits).map(|(l, &b)| l.impact(b)).sum() };
        assert!(impact(&mixed) < impact(&uniform));
    }
}
