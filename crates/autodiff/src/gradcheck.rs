//! Numeric gradient checking against central finite differences.
//!
//! Every differentiable operation in this crate is validated with
//! [`check_scalar_fn`], which compares an analytic gradient against
//! `(f(x + εe_i) - f(x - εe_i)) / 2ε` at every coordinate. The
//! graph-level front-end [`check_graph_fn`] drives the same comparison
//! through a full tape build + [`Graph::backward`] pass for every input
//! of a multi-input builder, and [`seeded_uniform`] / [`seeded_signed`]
//! generate the reproducible random test points the corpus in
//! `tests/gradcheck_corpus.rs` sweeps every registered op with.

use crate::graph::{Graph, Var};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::{Shape, Tensor};

/// Compares the analytic gradient of a scalar function against central
/// finite differences.
///
/// `f` maps an input tensor to `(loss, analytic_gradient)`. The check
/// perturbs every coordinate of `x0` by `±eps` and requires the relative
/// error of each analytic partial derivative to be below `tol` (with an
/// absolute floor for near-zero derivatives).
///
/// # Panics
///
/// Panics with a descriptive message at the first coordinate whose analytic
/// and numeric derivatives disagree — this is a test utility.
pub fn check_scalar_fn(x0: &Tensor, eps: f32, tol: f32, f: impl Fn(&Tensor) -> (f32, Tensor)) {
    let (_, analytic) = f(x0);
    assert_eq!(
        analytic.shape(),
        x0.shape(),
        "gradient shape {:?} differs from input shape {:?}",
        analytic.dims(),
        x0.dims()
    );
    for i in 0..x0.numel() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        let (lp, _) = f(&plus);
        let (lm, _) = f(&minus);
        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic.data()[i];
        let denom = a.abs().max(numeric.abs()).max(1.0);
        let rel = (a - numeric).abs() / denom;
        assert!(
            rel <= tol,
            "gradient mismatch at flat index {i}: analytic {a}, numeric {numeric}, rel err {rel} > {tol}"
        );
    }
}

/// A reproducible uniform random tensor on `[lo, hi)`, seeded so the
/// gradcheck corpus evaluates the same points on every run.
pub fn seeded_uniform(shape: impl Into<Shape>, seed: u64, lo: f32, hi: f32) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(shape, |_| lo + (hi - lo) * rng.gen::<f32>())
}

/// A reproducible random tensor whose entries lie in
/// `±[gap, gap + span)` — bounded away from zero on both sides. Use for
/// inputs to kinked ops (`relu`, `leaky_relu`, `abs`-like paths) where a
/// finite-difference probe must not straddle the non-differentiable point.
pub fn seeded_signed(shape: impl Into<Shape>, seed: u64, gap: f32, span: f32) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(shape, |_| {
        let mag = gap + span * rng.gen::<f32>();
        if rng.gen::<f32>() < 0.5 {
            mag
        } else {
            -mag
        }
    })
}

/// Gradient-checks a graph builder against central finite differences,
/// for **every** input tensor.
///
/// `build` receives a fresh [`Graph`] plus one [`Var`] per entry of
/// `inputs` (in order) and must return a *scalar* loss node. The check
/// runs one forward/backward pass to collect the analytic gradients,
/// then perturbs each coordinate of each input by `±eps` and compares
/// the numeric slope against the analytic partial, using the same
/// relative-error criterion as [`check_scalar_fn`]. Inputs that do not
/// influence the loss are required to have no (equivalently, zero)
/// gradient.
///
/// # Panics
///
/// Panics with a descriptive message naming the offending input and flat
/// coordinate on the first mismatch, or if `build` fails or returns a
/// non-scalar node — this is a test utility.
pub fn check_graph_fn(
    inputs: &[Tensor],
    eps: f32,
    tol: f32,
    build: impl Fn(&mut Graph, &[Var]) -> hero_tensor::Result<Var>,
) {
    let loss_of = |xs: &[Tensor]| -> f32 {
        let mut g = Graph::new();
        let vars: Vec<Var> = xs.iter().map(|x| g.input(x.clone())).collect();
        let loss = build(&mut g, &vars).expect("gradcheck corpus builder failed");
        let v = g.value(loss).item().expect("corpus loss must be scalar");
        g.reset();
        v
    };
    // One analytic pass over the unperturbed inputs.
    let analytic: Vec<Tensor> = {
        let mut g = Graph::new();
        let vars: Vec<Var> = inputs.iter().map(|x| g.input(x.clone())).collect();
        let loss = build(&mut g, &vars).expect("gradcheck corpus builder failed");
        let mut grads = g.backward(loss).expect("backward failed on corpus tape");
        let out = vars
            .iter()
            .zip(inputs)
            .map(|(v, x)| {
                grads
                    .take(*v)
                    .unwrap_or_else(|| Tensor::zeros(x.shape().clone()))
            })
            .collect();
        grads.recycle();
        g.reset();
        out
    };
    for (j, x0) in inputs.iter().enumerate() {
        assert_eq!(
            analytic[j].shape(),
            x0.shape(),
            "input {j}: gradient shape {:?} differs from input shape {:?}",
            analytic[j].dims(),
            x0.dims()
        );
        let mut probe: Vec<Tensor> = inputs.to_vec();
        for i in 0..x0.numel() {
            let base = x0.data()[i];
            probe[j].data_mut()[i] = base + eps;
            let lp = loss_of(&probe);
            probe[j].data_mut()[i] = base - eps;
            let lm = loss_of(&probe);
            probe[j].data_mut()[i] = base;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[j].data()[i];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            let rel = (a - numeric).abs() / denom;
            assert!(
                rel <= tol,
                "gradient mismatch at input {j}, flat index {i}: \
                 analytic {a}, numeric {numeric}, rel err {rel} > {tol}"
            );
        }
    }
}

/// Computes the full numeric gradient of a scalar function by central
/// differences (useful when only the value is available).
pub fn numeric_gradient(x0: &Tensor, eps: f32, f: impl Fn(&Tensor) -> f32) -> Tensor {
    let mut grad = Tensor::zeros(x0.shape().clone());
    for i in 0..x0.numel() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        grad.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_gradient_of_quadratic() {
        // f(x) = sum(x^2) -> grad = 2x
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], [3]).unwrap();
        let g = numeric_gradient(&x, 1e-2, |t| t.norm_l2_sq());
        for (gi, xi) in g.data().iter().zip(x.data()) {
            assert!((gi - 2.0 * xi).abs() < 1e-2);
        }
    }

    #[test]
    fn check_scalar_fn_accepts_correct_gradient() {
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1], [3]).unwrap();
        check_scalar_fn(&x, 1e-3, 1e-2, |t| (t.norm_l2_sq(), t.scale(2.0)));
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn check_scalar_fn_rejects_wrong_gradient() {
        let x = Tensor::from_vec(vec![0.3, -0.7], [2]).unwrap();
        check_scalar_fn(&x, 1e-3, 1e-2, |t| (t.norm_l2_sq(), t.scale(3.0)));
    }

    #[test]
    fn seeded_tensors_are_reproducible_and_bounded() {
        let a = seeded_uniform([2, 3], 42, -0.5, 0.5);
        let b = seeded_uniform([2, 3], 42, -0.5, 0.5);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| (-0.5..0.5).contains(v)));
        let c = seeded_uniform([2, 3], 43, -0.5, 0.5);
        assert_ne!(a, c, "different seeds must give different points");
        let s = seeded_signed([4, 4], 7, 0.2, 1.0);
        assert!(s.data().iter().all(|v| v.abs() >= 0.2 && v.abs() < 1.2));
        assert!(s.data().iter().any(|v| *v < 0.0));
        assert!(s.data().iter().any(|v| *v > 0.0));
    }

    #[test]
    fn check_graph_fn_accepts_multi_input_builder() {
        let a = seeded_uniform([2, 3], 1, -1.0, 1.0);
        let b = seeded_uniform([2, 3], 2, -1.0, 1.0);
        check_graph_fn(&[a, b], 1e-2, 1e-2, |g, v| {
            let prod = g.mul(v[0], v[1])?;
            let sq = g.square(prod);
            Ok(g.sum(sq))
        });
    }

    #[test]
    #[should_panic(expected = "gradient mismatch at input 0")]
    fn check_graph_fn_rejects_wrong_gradient() {
        // A coordinate pinned exactly on the relu kink: the analytic
        // backward picks one side (slope 0) while the central difference
        // sees eps/2, so the check must flag input 0.
        let mut x = seeded_signed([5], 3, 0.5, 0.5);
        x.data_mut()[2] = 0.0;
        check_graph_fn(&[x], 1e-1, 1e-3, |g, v| {
            let r = g.relu(v[0]);
            let sq = g.square(r);
            Ok(g.sum(sq))
        });
    }
}
