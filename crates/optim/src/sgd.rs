//! SGD-with-momentum parameter updates.

use hero_tensor::{Result, Tensor, TensorError};

/// Momentum state for SGD, one buffer per parameter tensor.
///
/// The update is the classic heavy-ball form the paper (and PyTorch) uses:
/// `v ← μ·v + ∇` followed by `W ← W − η·v`, with μ = 0.9 in §5.1.
#[derive(Debug, Clone)]
pub struct SgdState {
    momentum: f32,
    buffers: Option<Vec<Tensor>>,
}

impl SgdState {
    /// Creates a state with the given momentum coefficient. Buffers are
    /// allocated lazily on the first update.
    pub fn new(momentum: f32) -> Self {
        SgdState {
            momentum,
            buffers: None,
        }
    }

    /// The momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Applies one update in place: `v ← μv + g`, `p ← p − η·v` for every
    /// (parameter, gradient) pair.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `params` and `grads` are misaligned or the
    /// shapes changed since the buffers were created.
    pub fn update(&mut self, params: &mut [Tensor], grads: &[Tensor], lr: f32) -> Result<()> {
        if params.len() != grads.len() {
            return Err(TensorError::InvalidArgument(format!(
                "{} params but {} grads",
                params.len(),
                grads.len()
            )));
        }
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                p.axpy(-lr, g)?;
            }
            return Ok(());
        }
        let buffers = self.buffers.get_or_insert_with(|| {
            grads
                .iter()
                .map(|g| Tensor::zeros(g.shape().clone()))
                .collect()
        });
        if buffers.len() != grads.len() {
            return Err(TensorError::InvalidArgument(format!(
                "momentum buffers ({}) do not match gradients ({})",
                buffers.len(),
                grads.len()
            )));
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(buffers.iter_mut()) {
            v.scale_in_place(self.momentum);
            v.axpy(1.0, g)?;
            p.axpy(-lr, v)?;
        }
        Ok(())
    }

    /// Clears the momentum buffers (e.g. when restarting training).
    pub fn reset(&mut self) {
        self.buffers = None;
    }

    /// The momentum buffers, if they have been materialized. Buffers are
    /// created lazily on the first non-zero-momentum step, so `None`
    /// also describes a freshly constructed state.
    pub fn buffers(&self) -> Option<&[Tensor]> {
        self.buffers.as_deref()
    }

    /// Installs previously captured momentum buffers (checkpoint
    /// resume). Passing an empty vector clears them, matching a state
    /// that never stepped.
    pub fn set_buffers(&mut self, buffers: Vec<Tensor>) {
        self.buffers = if buffers.is_empty() {
            None
        } else {
            Some(buffers)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_momentum_is_plain_gradient_descent() {
        let mut s = SgdState::new(0.0);
        let mut p = vec![Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap()];
        let g = vec![Tensor::from_vec(vec![0.5, -0.5], [2]).unwrap()];
        s.update(&mut p, &g, 0.1).unwrap();
        assert_eq!(p[0].data(), &[0.95, 2.05]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut s = SgdState::new(0.9);
        let mut p = vec![Tensor::zeros([1])];
        let g = vec![Tensor::ones([1])];
        s.update(&mut p, &g, 1.0).unwrap();
        assert_eq!(p[0].data(), &[-1.0]); // v = 1
        s.update(&mut p, &g, 1.0).unwrap();
        assert!((p[0].data()[0] - (-2.9)).abs() < 1e-6); // v = 1.9
        s.update(&mut p, &g, 1.0).unwrap();
        assert!((p[0].data()[0] - (-5.61)).abs() < 1e-5); // v = 2.71
    }

    #[test]
    fn reset_clears_velocity() {
        let mut s = SgdState::new(0.9);
        let mut p = vec![Tensor::zeros([1])];
        let g = vec![Tensor::ones([1])];
        s.update(&mut p, &g, 1.0).unwrap();
        s.reset();
        let mut p2 = vec![Tensor::zeros([1])];
        s.update(&mut p2, &g, 1.0).unwrap();
        assert_eq!(p2[0].data(), &[-1.0]); // no residual velocity
        assert_eq!(s.momentum(), 0.9);
    }

    #[test]
    fn update_validates_alignment() {
        let mut s = SgdState::new(0.9);
        let mut p = vec![Tensor::zeros([2])];
        assert!(s.update(&mut p, &[], 0.1).is_err());
        let g = vec![Tensor::zeros([3])];
        assert!(s.update(&mut p, &g, 0.1).is_err());
    }

    #[test]
    fn momentum_descends_quadratic_faster_than_plain() {
        // Minimize f(x) = 0.5 * x^2 from x = 1; compare 20 steps.
        let run = |momentum: f32| {
            let mut s = SgdState::new(momentum);
            let mut p = vec![Tensor::from_vec(vec![1.0], [1]).unwrap()];
            for _ in 0..20 {
                let g = vec![p[0].clone()]; // grad = x
                s.update(&mut p, &g, 0.05).unwrap();
            }
            p[0].data()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }
}
