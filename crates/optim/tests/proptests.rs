//! Property-based tests for schedules and optimizer behaviour on random
//! convex quadratics.

use hero_hessian::Quadratic;
use hero_optim::{LrSchedule, Method, Optimizer, SgdState};
use hero_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #[test]
    fn cosine_schedule_stays_in_range(
        lr in 0.001f32..1.0, min_frac in 0.0f32..1.0, total in 1usize..500, step in 0usize..1000
    ) {
        let min_lr = lr * min_frac;
        let s = LrSchedule::Cosine { lr, min_lr, total_steps: total };
        let v = s.at(step);
        prop_assert!(v <= lr + 1e-6);
        prop_assert!(v >= min_lr - 1e-6);
    }

    #[test]
    fn cosine_is_monotone_nonincreasing(lr in 0.01f32..1.0, total in 2usize..100) {
        let s = LrSchedule::Cosine { lr, min_lr: 0.0, total_steps: total };
        let mut prev = f32::INFINITY;
        for step in 0..=total {
            let v = s.at(step);
            prop_assert!(v <= prev + 1e-6);
            prev = v;
        }
    }

    #[test]
    fn step_schedule_decays_geometrically(
        lr in 0.01f32..1.0, gamma in 0.1f32..0.9, period in 1usize..50, k in 0usize..5
    ) {
        let s = LrSchedule::Step { lr, gamma, period };
        let expected = lr * gamma.powi(k as i32);
        let v = s.at(k * period);
        prop_assert!((v - expected).abs() <= 1e-4 * expected.max(1e-9));
    }

    /// Gradient descent with a stable learning rate contracts toward the
    /// minimizer of any well-conditioned diagonal quadratic.
    #[test]
    fn sgd_contracts_on_random_quadratics(
        eigs in prop::collection::vec(0.1f32..4.0, 1..6), seed in 0u64..100
    ) {
        let q = Quadratic::diag(&eigs);
        let n = eigs.len();
        let x0: Vec<f32> = (0..n)
            .map(|i| (((seed + i as u64) % 17) as f32 / 8.5) - 1.0)
            .collect();
        let mut params = vec![Tensor::from_vec(x0, [n]).unwrap()];
        let loss0 = q.loss(&params[0]).unwrap();
        let mut opt = Optimizer::new(Method::Sgd).with_weight_decay(0.0).with_momentum(0.0);
        // lr < 2/λ_max = 0.5 guarantees contraction.
        for _ in 0..60 {
            opt.step(&mut q.oracle(), &mut params, &[false], 0.2).unwrap();
        }
        let loss1 = q.loss(&params[0]).unwrap();
        prop_assert!(loss1 <= loss0 + 1e-6);
        prop_assert!(loss1 < 0.5 * loss0.max(1e-6) + 1e-4);
    }

    /// HERO and SAM reach the same unique minimizer as SGD on convex
    /// quadratics (regularization must not move the optimum of a quadratic
    /// whose curvature is constant).
    #[test]
    fn regularized_methods_share_quadratic_minimizer(
        eig in 0.2f32..2.0, b in -1.0f32..1.0
    ) {
        let a = Tensor::from_vec(vec![eig], [1]).unwrap().reshape([1, 1]).unwrap();
        let q = Quadratic::new(a, Tensor::from_vec(vec![b], [1]).unwrap()).unwrap();
        let x_star = -b / eig;
        for method in [
            Method::Sgd,
            Method::FirstOrderOnly { h: 0.05 },
            Method::Hero { h: 0.05, gamma: 0.02 },
        ] {
            let mut params = vec![Tensor::from_vec(vec![1.0], [1]).unwrap()];
            let mut opt = Optimizer::new(method).with_weight_decay(0.0).with_momentum(0.0);
            for _ in 0..300 {
                opt.step(&mut q.oracle(), &mut params, &[false], 0.3).unwrap();
            }
            let x = params[0].data()[0];
            prop_assert!(
                (x - x_star).abs() < 0.05,
                "{} converged to {x}, optimum {x_star}", method.name()
            );
        }
    }

    /// Momentum buffers keep parameter and buffer shapes aligned for any
    /// mix of tensor shapes.
    #[test]
    fn sgd_state_handles_heterogeneous_shapes(
        dims in prop::collection::vec(1usize..6, 1..5), momentum in 0.0f32..0.99
    ) {
        let mut params: Vec<Tensor> = dims.iter().map(|&d| Tensor::ones([d])).collect();
        let grads: Vec<Tensor> = dims.iter().map(|&d| Tensor::full([d], 0.5)).collect();
        let mut s = SgdState::new(momentum);
        for _ in 0..3 {
            s.update(&mut params, &grads, 0.1).unwrap();
        }
        for (p, &d) in params.iter().zip(&dims) {
            prop_assert_eq!(p.numel(), d);
            prop_assert!(p.data().iter().all(|v| *v < 1.0));
        }
    }
}
