//! The paper's curvature probe ‖Hz‖ (Fig. 2a), the Hutchinson trace
//! estimator (global and per-layer) and the regularizer estimate.

use crate::hvp::{fd_hvp, fd_hvp_into, GradOracle};
use crate::stats::{probe_seed, Estimate};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::{
    fill_standard_normal, global_dot, global_norm_l2, pool, Result, Tensor, TensorError,
};

/// Computes the paper's layer-scaled perturbation direction (Eq. 15):
/// `z_i = (W_i ⊙ W_i ⊙ g_i) / (‖W_i‖₂ · ‖g_i‖₂)` per parameter tensor,
/// with `W_i ⊙ W_i` the element-wise square.
///
/// The element-wise `W²` factor perturbs large-magnitude weights more
/// (adapting to each layer's weight distribution, §4.1) and is what makes
/// the paper's step sizes `h = 0.5 / 1.0` well-scaled: the resulting `z`
/// has norm well below ‖W‖.
///
/// Layers with a vanishing weight or gradient norm get a zero direction
/// (no perturbation) rather than a division by zero.
///
/// # Panics
///
/// Panics if the lists have different lengths (they always come from the
/// same canonical parameter order).
pub fn layer_scaled_direction(params: &[Tensor], grads: &[Tensor]) -> Vec<Tensor> {
    let mut out = Vec::with_capacity(params.len());
    layer_scaled_direction_into(params, grads, &mut out);
    out
}

/// In-place [`layer_scaled_direction`]: writes `z` into `out`, reusing its
/// buffers when the shapes already match so HERO's per-step direction
/// computation allocates nothing after warm-up.
///
/// # Panics
///
/// Panics if the lists have different lengths (they always come from the
/// same canonical parameter order).
pub fn layer_scaled_direction_into(params: &[Tensor], grads: &[Tensor], out: &mut Vec<Tensor>) {
    assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
    let reuse =
        out.len() == params.len() && out.iter().zip(params).all(|(o, p)| o.shape() == p.shape());
    if !reuse {
        out.clear();
        out.extend(params.iter().map(|p| Tensor::zeros(p.shape().clone())));
    }
    for ((w, g), z) in params.iter().zip(grads).zip(out.iter_mut()) {
        let gn = g.norm_l2();
        let wn = w.norm_l2();
        if gn <= f32::MIN_POSITIVE || wn <= f32::MIN_POSITIVE {
            z.data_mut().fill(0.0);
        } else {
            let inv = 1.0 / (wn * gn);
            for ((zd, &wd), &gd) in z.data_mut().iter_mut().zip(w.data()).zip(g.data()) {
                *zd = wd * wd * gd * inv;
            }
        }
    }
}

/// Evaluates the Hessian-norm probe ‖Hz‖₂ the paper plots in Fig. 2(a),
/// with `z` the layer-scaled gradient direction of Eq. 15.
///
/// Returns `(‖Hz‖₂, loss)` at `params`.
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn hessian_norm_probe(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    eps: f32,
) -> Result<(f32, f32)> {
    let _obs = hero_obs::span("probe");
    let (loss, grads) = oracle.grad(params)?;
    let z = layer_scaled_direction(params, &grads);
    let hz = fd_hvp(oracle, params, &grads, &z, eps)?;
    Ok((global_norm_l2(&hz), loss))
}

/// Fills `t` with Rademacher (±1) entries drawn from `rng`.
fn fill_rademacher(t: &mut Tensor, rng: &mut impl Rng) {
    for v in t.data_mut() {
        *v = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    }
}

/// Hutchinson estimate of the Hessian trace: `E_z[zᵀHz]` with Rademacher
/// probes. Each probe costs one gradient evaluation.
///
/// Probes are drawn from independent streams derived from `seed` (probe
/// `i` uses [`probe_seed`]`(seed, i)`), so runs are reproducible and the
/// probe count can change without re-seeding the shared prefix. The
/// returned [`Estimate`] carries the per-probe standard error next to the
/// mean.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for zero probes and
/// propagates oracle and shape errors.
pub fn hutchinson_trace(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    probes: usize,
    eps: f32,
    seed: u64,
) -> Result<Estimate> {
    if probes == 0 {
        return Err(TensorError::InvalidArgument(
            "hutchinson_trace needs at least one probe".into(),
        ));
    }
    let (_, grads) = oracle.grad(params)?;
    let mut z: Vec<Tensor> = params
        .iter()
        .map(|p| Tensor::zeros(p.shape().clone()))
        .collect();
    let mut shifted = Vec::new();
    let mut hz = Vec::new();
    let mut samples = Vec::with_capacity(probes);
    for i in 0..probes {
        let mut rng = StdRng::seed_from_u64(probe_seed(seed, i));
        for t in &mut z {
            fill_rademacher(t, &mut rng);
        }
        fd_hvp_into(oracle, params, &grads, &z, eps, &mut shifted, &mut hz)?;
        samples.push(global_dot(&z, &hz));
    }
    for t in shifted.drain(..).chain(hz.drain(..)) {
        pool::recycle_tensor(t);
    }
    Ok(Estimate::from_samples(&samples))
}

/// Per-parameter-tensor Hutchinson traces via *layer-masked* probes: for
/// layer `i` the probe is Rademacher on that tensor and zero elsewhere, so
/// `zᵀ(Hz)` estimates `tr(H_ii)` — the diagonal block's trace — with no
/// cross-layer noise. One gradient evaluation per `(layer, probe)` pair,
/// all through the zero-allocation [`fd_hvp_into`] path.
///
/// The estimates are unbiased and sum to the global Hessian trace, which
/// is the HeRo-Q quantization-sensitivity proxy this repo cross-checks
/// against the certified static `SensitivityMatrix`.
///
/// Returns one [`Estimate`] per parameter tensor, in canonical order.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for zero probes and
/// propagates oracle and shape errors.
pub fn layer_traces(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    probes: usize,
    eps: f32,
    seed: u64,
) -> Result<Vec<Estimate>> {
    if probes == 0 {
        return Err(TensorError::InvalidArgument(
            "layer_traces needs at least one probe".into(),
        ));
    }
    let _obs = hero_obs::span("layer_traces");
    let (_, grads) = oracle.grad(params)?;
    let mut z: Vec<Tensor> = params
        .iter()
        .map(|p| Tensor::zeros(p.shape().clone()))
        .collect();
    let mut shifted = Vec::new();
    let mut hz = Vec::new();
    let mut out = Vec::with_capacity(params.len());
    for layer in 0..params.len() {
        let mut samples = Vec::with_capacity(probes);
        for probe in 0..probes {
            // One independent stream per (layer, probe) cell.
            let cell = probe_seed(seed, layer * probes + probe);
            let mut rng = StdRng::seed_from_u64(cell);
            fill_rademacher(&mut z[layer], &mut rng);
            fd_hvp_into(oracle, params, &grads, &z, eps, &mut shifted, &mut hz)?;
            // Only the masked block contributes: z is zero off-layer.
            samples.push(z[layer].dot(&hz[layer])?);
        }
        z[layer].data_mut().fill(0.0);
        out.push(Estimate::from_samples(&samples));
    }
    for t in shifted.drain(..).chain(hz.drain(..)) {
        pool::recycle_tensor(t);
    }
    Ok(out)
}

/// Monte-Carlo estimate of the regularizer `L_r = E_z‖Hz‖²` of Eq. 13 with
/// Gaussian probes (the quantity HERO minimizes, equal to Σλᵢ²).
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn eigen_sq_sum_estimate(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    probes: usize,
    eps: f32,
    rng: &mut impl Rng,
) -> Result<f32> {
    let (_, grads) = oracle.grad(params)?;
    let mut acc = 0.0;
    for _ in 0..probes {
        let z: Vec<Tensor> = params
            .iter()
            .map(|p| {
                let mut t = Tensor::zeros(p.shape().clone());
                fill_standard_normal(&mut t, rng);
                t
            })
            .collect();
        let hz = fd_hvp(oracle, params, &grads, &z, eps)?;
        acc += global_norm_l2(&hz).powi(2);
    }
    Ok(acc / probes.max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::Quadratic;
    use hero_tensor::rng::StdRng;

    #[test]
    fn layer_scaled_direction_matches_eq15() {
        let w = vec![Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap()]; // ||w|| = 5
        let g = vec![Tensor::from_vec(vec![0.0, 2.0], [2]).unwrap()]; // ||g|| = 2
        let z = layer_scaled_direction(&w, &g);
        // z = (w^2 ⊙ g) / (||w|| ||g||) = [9*0, 16*2] / 10 = [0, 3.2]
        assert_eq!(z[0].data(), &[0.0, 3.2]);
    }

    #[test]
    fn direction_scales_quadratically_with_weight_magnitude() {
        // Doubling W quadruples W² but only doubles ||W||: z doubles.
        let w1 = vec![Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap()];
        let w2 = vec![w1[0].scale(2.0)];
        let g = vec![Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap()];
        let z1 = layer_scaled_direction(&w1, &g);
        let z2 = layer_scaled_direction(&w2, &g);
        for (a, b) in z2[0].data().iter().zip(z1[0].data()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_gradient_layer_gets_zero_direction() {
        let w = vec![Tensor::ones([2]), Tensor::ones([2])];
        let g = vec![Tensor::zeros([2]), Tensor::ones([2])];
        let z = layer_scaled_direction(&w, &g);
        assert_eq!(z[0].data(), &[0.0, 0.0]);
        assert!(z[1].norm_l2() > 0.0);
    }

    #[test]
    fn hessian_norm_probe_on_quadratic() {
        // H = diag(2, 2), x0 = (3,4): g = (6,8), ||w||·||g|| = 50,
        // z = (9·6, 16·8)/50 = (1.08, 2.56), Hz = (2.16, 5.12), ||Hz|| ≈ 5.557.
        let q = Quadratic::diag(&[2.0, 2.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap()];
        let (hn, loss) = hessian_norm_probe(&mut oracle, &params, 1e-3).unwrap();
        let expected = (2.16f32 * 2.16 + 5.12 * 5.12).sqrt();
        assert!(
            (hn - expected).abs() < 0.05,
            "‖Hz‖={hn}, expected {expected}"
        );
        assert!((loss - 25.0).abs() < 1e-4);
    }

    #[test]
    fn hutchinson_trace_of_diagonal() {
        // Rademacher probes square to 1, so zᵀHz = Σ Hₖₖ exactly for a
        // diagonal Hessian: every sample equals the trace.
        let q = Quadratic::diag(&[1.0, 2.0, 3.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([3])];
        let tr = hutchinson_trace(&mut oracle, &params, 8, 1e-3, 5).unwrap();
        assert!((tr.mean - 6.0).abs() < 0.1, "trace={}", tr.mean);
        assert_eq!(tr.samples, 8);
        assert!(tr.std_error.is_finite() && tr.std_error < 0.1);
    }

    #[test]
    fn hutchinson_trace_is_seed_reproducible() {
        // Off-diagonal Hessian [[0,1],[1,0]]: zᵀHz = 2·z₀z₁ = ±2, so the
        // estimate genuinely depends on the probe signs (on a diagonal
        // Hessian every Rademacher probe is exact and seeds are invisible).
        let mut oracle = |ps: &[Tensor]| {
            let d = ps[0].data();
            Ok((d[0] * d[1], vec![Tensor::from_vec(vec![d[1], d[0]], [2])?]))
        };
        let params = vec![Tensor::zeros([2])];
        let a = hutchinson_trace(&mut oracle, &params, 3, 1e-3, 9).unwrap();
        let b = hutchinson_trace(&mut oracle, &params, 3, 1e-3, 9).unwrap();
        assert_eq!(a, b, "same seed must reproduce bitwise");
        let others: Vec<f32> = (0..16)
            .map(|s| {
                hutchinson_trace(&mut oracle, &params, 3, 1e-3, s)
                    .unwrap()
                    .mean
            })
            .collect();
        assert!(
            others.iter().any(|&m| m != a.mean),
            "seed changes never alter the estimate"
        );
    }

    #[test]
    fn hutchinson_trace_rejects_zero_probes() {
        let q = Quadratic::diag(&[1.0]);
        let params = vec![Tensor::zeros([1])];
        assert!(hutchinson_trace(&mut q.oracle(), &params, 0, 1e-3, 0).is_err());
    }

    #[test]
    fn layer_traces_of_block_diagonal() {
        // Two parameter tensors over a block-diagonal quadratic: each
        // masked probe recovers its block's trace exactly (diagonal H).
        let q = Quadratic::diag(&[1.0, 2.0, 3.0, 4.0]);
        let mut oracle = move |ps: &[Tensor]| {
            let flat: Vec<f32> = ps.iter().flat_map(|t| t.data().iter().copied()).collect();
            let x = vec![Tensor::from_vec(flat, [4])?];
            let (l, g) = q.oracle().grad(&x)?;
            let gd = g[0].data();
            Ok((
                l,
                vec![
                    Tensor::from_vec(gd[..2].to_vec(), [2])?,
                    Tensor::from_vec(gd[2..].to_vec(), [2])?,
                ],
            ))
        };
        let params = vec![Tensor::zeros([2]), Tensor::zeros([2])];
        let traces = layer_traces(&mut oracle, &params, 4, 1e-3, 7).unwrap();
        assert_eq!(traces.len(), 2);
        assert!((traces[0].mean - 3.0).abs() < 0.05, "{:?}", traces[0]);
        assert!((traces[1].mean - 7.0).abs() < 0.05, "{:?}", traces[1]);
        // Per-layer traces sum to the global trace.
        let total: f32 = traces.iter().map(|t| t.mean).sum();
        let global = hutchinson_trace(&mut oracle, &params, 4, 1e-3, 7).unwrap();
        assert!((total - global.mean).abs() < 0.1, "{total} vs {global:?}");
    }

    #[test]
    fn layer_traces_rejects_zero_probes() {
        let q = Quadratic::diag(&[1.0]);
        let params = vec![Tensor::zeros([1])];
        assert!(layer_traces(&mut q.oracle(), &params, 0, 1e-3, 0).is_err());
    }

    #[test]
    fn eigen_sq_sum_of_diagonal() {
        // sum λ² = 1 + 4 + 9 = 14.
        let q = Quadratic::diag(&[1.0, 2.0, 3.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([3])];
        let est = eigen_sq_sum_estimate(
            &mut oracle,
            &params,
            256,
            1e-3,
            &mut StdRng::seed_from_u64(6),
        )
        .unwrap();
        assert!((est - 14.0).abs() < 3.0, "estimate={est}");
    }

    #[test]
    fn flatter_quadratic_has_smaller_probe() {
        // The probe must rank curvature correctly — this ordering is what
        // Fig. 2(a) relies on.
        let sharp = Quadratic::diag(&[10.0, 10.0]);
        let flat = Quadratic::diag(&[0.5, 0.5]);
        let params = vec![Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap()];
        let (hn_sharp, _) = hessian_norm_probe(&mut sharp.oracle(), &params, 1e-3).unwrap();
        let (hn_flat, _) = hessian_norm_probe(&mut flat.oracle(), &params, 1e-3).unwrap();
        assert!(hn_sharp > hn_flat * 10.0);
    }
}
