//! Fully-connected (dense) layer.

use crate::module::{Layer, ParamInfo, ParamKind, ParamSource};
use hero_autodiff::{Graph, Var};
use hero_tensor::rng::Rng;
use hero_tensor::{Init, Result, Tensor};

/// Dense layer computing `y = x W + b` for `x` of shape `(batch, in_dim)`.
///
/// The weight is stored `(in_dim, out_dim)` so the forward pass is a plain
/// matmul with no transposition.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Tensor,
    b: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized dense layer with bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Linear {
            w: Init::KaimingNormal { fan_in: in_dim }.tensor([in_dim, out_dim], rng),
            b: Some(Tensor::zeros([out_dim])),
        }
    }

    /// Creates a dense layer without bias.
    pub fn new_no_bias(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Linear {
            w: Init::KaimingNormal { fan_in: in_dim }.tensor([in_dim, out_dim], rng),
            b: None,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.w.dims()[0]
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.w.dims()[1]
    }
}

impl Layer for Linear {
    fn forward(&mut self, g: &mut Graph, x: Var, _train: bool, vars: &mut Vec<Var>) -> Result<Var> {
        let w = g.input(self.w.clone_pooled());
        vars.push(w);
        let mut out = g.matmul(x, w)?;
        if let Some(b) = &self.b {
            let bv = g.input(b.clone_pooled());
            vars.push(bv);
            out = g.add(out, bv)?; // broadcasts (out_dim,) over rows
        }
        Ok(out)
    }

    fn collect_params(&self, out: &mut Vec<Tensor>) {
        out.push(self.w.clone());
        if let Some(b) = &self.b {
            out.push(b.clone());
        }
    }

    fn assign_params(&mut self, src: &mut ParamSource<'_>) -> Result<()> {
        src.copy_into(&mut self.w)?;
        if let Some(b) = &mut self.b {
            src.copy_into(b)?;
        }
        Ok(())
    }

    fn param_infos(&self, prefix: &str, out: &mut Vec<ParamInfo>) {
        out.push(ParamInfo {
            name: format!("{prefix}.weight"),
            kind: ParamKind::Weight,
        });
        if self.b.is_some() {
            out.push(ParamInfo {
                name: format!("{prefix}.bias"),
                kind: ParamKind::Bias,
            });
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::rng::StdRng;

    #[test]
    fn forward_computes_affine_map() {
        let mut l = Linear::new(3, 2, &mut StdRng::seed_from_u64(0));
        // Overwrite with known values.
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], [3, 2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], [2]).unwrap();
        l.assign_params(&mut ParamSource::new(&[w, b])).unwrap();
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]).unwrap());
        let mut vars = Vec::new();
        let y = l.forward(&mut g, x, true, &mut vars).unwrap();
        // y = [1*1 + 2*0 + 3*1 + 10, 1*0 + 2*1 + 3*1 + 20] = [14, 25]
        assert_eq!(g.value(y).data(), &[14.0, 25.0]);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn no_bias_variant_has_one_param() {
        let l = Linear::new_no_bias(4, 3, &mut StdRng::seed_from_u64(1));
        let mut ps = Vec::new();
        l.collect_params(&mut ps);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].dims(), &[4, 3]);
        let mut infos = Vec::new();
        l.param_infos("fc", &mut infos);
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "fc.weight");
    }

    #[test]
    fn dims_accessors() {
        let l = Linear::new(5, 7, &mut StdRng::seed_from_u64(2));
        assert_eq!(l.in_dim(), 5);
        assert_eq!(l.out_dim(), 7);
    }

    #[test]
    fn gradient_shapes_match_params() {
        let mut l = Linear::new(3, 2, &mut StdRng::seed_from_u64(3));
        let mut g = Graph::new();
        let x = g.input(Tensor::ones([4, 3]));
        let mut vars = Vec::new();
        let y = l.forward(&mut g, x, true, &mut vars).unwrap();
        let loss = g.sum(y);
        let grads = g.backward(loss).unwrap();
        assert_eq!(grads.get(vars[0]).unwrap().dims(), &[3, 2]);
        assert_eq!(grads.get(vars[1]).unwrap().dims(), &[2]);
        // Bias gradient of sum loss is the batch size per output.
        assert_eq!(grads.get(vars[1]).unwrap().data(), &[4.0, 4.0]);
    }
}
