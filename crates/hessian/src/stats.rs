//! Small statistics toolkit for the spectrum observatory: mean ±
//! standard-error estimates over probe samples and Spearman rank
//! correlation for comparing sensitivity rankings.

/// A Monte-Carlo estimate annotated with its sampling uncertainty.
///
/// Every stochastic curvature estimator in this crate (Hutchinson traces,
/// SLQ moments, restarted power iteration) reports one of these instead of
/// a bare mean, so downstream artifacts carry confidence intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean over the probes.
    pub mean: f32,
    /// Standard error of the mean `s / √n` (sample standard deviation over
    /// the square root of the sample count). `NaN` when fewer than two
    /// samples were drawn — a single probe carries no spread information.
    pub std_error: f32,
    /// Number of probe samples that produced the mean.
    pub samples: usize,
}

impl Estimate {
    /// An estimate pinned to an exactly known value (zero uncertainty).
    pub fn exact(value: f32) -> Self {
        Estimate {
            mean: value,
            std_error: 0.0,
            samples: 1,
        }
    }

    /// Mean and standard error of `samples`. Empty input yields a NaN
    /// mean; a single sample yields a NaN standard error.
    pub fn from_samples(samples: &[f32]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Estimate {
                mean: f32::NAN,
                std_error: f32::NAN,
                samples: 0,
            };
        }
        let mean = samples.iter().sum::<f32>() / n as f32;
        let std_error = if n < 2 {
            f32::NAN
        } else {
            let var = samples
                .iter()
                .map(|&x| {
                    let d = x - mean;
                    d * d
                })
                .sum::<f32>()
                / (n - 1) as f32;
            (var / n as f32).sqrt()
        };
        Estimate {
            mean,
            std_error,
            samples: n,
        }
    }

    /// Half-width of the ±1.96·SE normal-approximation 95% confidence
    /// interval (NaN when the standard error is unknown).
    pub fn ci95(&self) -> f32 {
        1.96 * self.std_error
    }
}

/// Fractional ranks of `values` (average rank for ties, 1-based), the
/// standard Spearman preprocessing.
fn fractional_ranks(values: &[f32]) -> Vec<f32> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f32; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Ties share the average of the ranks they span.
        let avg = (i + j) as f32 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation between two aligned score lists (ties get
/// average ranks). Returns `NaN` for lists shorter than two entries or
/// when either list is constant (its rank variance is zero).
///
/// This is the statistic the observatory reports as the *empirical vs
/// static* sensitivity-ranking overlap: `a` the measured per-layer Hessian
/// traces, `b` the certified static loss-error bounds.
///
/// # Panics
///
/// Panics if the lists have different lengths (they always describe the
/// same layer set).
pub fn spearman_rank(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "spearman inputs must align");
    let n = a.len();
    if n < 2 {
        return f32::NAN;
    }
    let ra = fractional_ranks(a);
    let rb = fractional_ranks(b);
    let mean = (n as f32 + 1.0) / 2.0;
    let (mut cov, mut va, mut vb) = (0.0f32, 0.0f32, 0.0f32);
    for (x, y) in ra.iter().zip(&rb) {
        let dx = x - mean;
        let dy = y - mean;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va <= 0.0 || vb <= 0.0 {
        return f32::NAN;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// [`spearman_rank`] with the degenerate cases made explicit: `None`
/// instead of `NaN` for lists shorter than two entries or with a
/// constant (zero-rank-variance) side.
///
/// Gating code must use this form: a `NaN` fed to `f32::min`/`max` or a
/// `<` comparison silently disappears (both ignore `NaN`), so a
/// degenerate ranking would pass a `worst_overlap` gate it never
/// actually cleared.
///
/// # Panics
///
/// Panics if the lists have different lengths (they always describe the
/// same layer set).
pub fn spearman_rank_checked(a: &[f32], b: &[f32]) -> Option<f32> {
    let rho = spearman_rank(a, b);
    (!rho.is_nan()).then_some(rho)
}

/// Derives the per-probe RNG seed for probe `index` of a run seeded with
/// `base`: probes are independent streams, and inserting or dropping one
/// probe never re-seeds the others (SplitMix-style stream splitting).
pub fn probe_seed(base: u64, index: usize) -> u64 {
    base ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_mean_and_se() {
        let e = Estimate::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((e.mean - 2.5).abs() < 1e-6);
        // s² = (2.25+0.25+0.25+2.25)/3 = 5/3, SE = sqrt(5/12)
        assert!((e.std_error - (5.0f32 / 12.0).sqrt()).abs() < 1e-6);
        assert_eq!(e.samples, 4);
        assert!((e.ci95() - 1.96 * e.std_error).abs() < 1e-6);
    }

    #[test]
    fn estimate_degenerate_inputs() {
        assert!(Estimate::from_samples(&[]).mean.is_nan());
        let one = Estimate::from_samples(&[7.0]);
        assert_eq!(one.mean, 7.0);
        assert!(one.std_error.is_nan());
        let exact = Estimate::exact(3.0);
        assert_eq!(exact.mean, 3.0);
        assert_eq!(exact.std_error, 0.0);
    }

    #[test]
    fn spearman_perfect_and_inverted() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman_rank(&a, &b) - 1.0).abs() < 1e-6);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman_rank(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn spearman_is_rank_based_not_linear() {
        // Monotone but non-linear mapping still gives exactly 1.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 8.0, 27.0, 1000.0];
        assert!((spearman_rank(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman_rank(&a, &b) - 1.0).abs() < 1e-6);
        // A constant list has zero rank variance: undefined correlation.
        assert!(spearman_rank(&[1.0, 1.0], &[1.0, 2.0]).is_nan());
    }

    #[test]
    fn spearman_degenerate_lengths() {
        assert!(spearman_rank(&[], &[]).is_nan());
        assert!(spearman_rank(&[1.0], &[2.0]).is_nan());
    }

    #[test]
    fn spearman_checked_surfaces_degeneracy_as_none() {
        assert_eq!(spearman_rank_checked(&[], &[]), None);
        assert_eq!(spearman_rank_checked(&[1.0], &[2.0]), None);
        assert_eq!(spearman_rank_checked(&[1.0, 1.0], &[1.0, 2.0]), None);
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        let rho = spearman_rank_checked(&a, &b).expect("well-defined");
        assert!((rho + 1.0).abs() < 1e-6);
    }

    #[test]
    fn probe_seeds_are_distinct_streams() {
        let s: Vec<u64> = (0..8).map(|i| probe_seed(42, i)).collect();
        for i in 0..s.len() {
            for j in i + 1..s.len() {
                assert_ne!(s[i], s[j]);
            }
        }
        assert_ne!(probe_seed(1, 0), probe_seed(2, 0));
    }
}
