//! Cost of the curvature machinery: finite-difference HVPs, the Fig. 2
//! ‖Hz‖ probe, and power iteration for λ_max.

use hero_bench::timing::{default_budget, time_op};
use hero_core::experiment::model_config;
use hero_data::Preset;
use hero_hessian::{
    fd_hvp, hessian_norm_probe, power_iteration, GradOracle, PowerIterConfig, Quadratic,
};
use hero_nn::models::ModelKind;
use hero_optim::BatchOracle;
use hero_tensor::rng::StdRng;
use hero_tensor::Tensor;

fn main() {
    let budget = default_budget();

    let q = Quadratic::diag(&(0..64).map(|i| 0.1 * i as f32).collect::<Vec<_>>());
    let params = vec![Tensor::zeros([64])];
    let mut oracle = q.oracle();
    let (_, g0) = GradOracle::grad(&mut oracle, &params).unwrap();
    let v = vec![Tensor::ones([64])];
    time_op("fd_hvp_quadratic_64", budget, || {
        std::hint::black_box(fd_hvp(&mut oracle, &params, &g0, &v, 1e-3).unwrap());
    });

    let preset = Preset::C10;
    let (train_set, _) = preset.load(0.2);
    let images = train_set.images.narrow(0, 16).unwrap();
    let labels = train_set.labels[..16].to_vec();
    let mut net = ModelKind::Resnet.build(model_config(preset), &mut StdRng::seed_from_u64(0));
    let params = net.params();
    time_op("hessian_norm_probe_resnet_b16", budget, || {
        let mut oracle = BatchOracle::new(&mut net, &images, &labels);
        std::hint::black_box(hessian_norm_probe(&mut oracle, &params, 1e-3).unwrap());
    });
    time_op("power_iteration_resnet_b16_5it", budget, || {
        let mut oracle = BatchOracle::new(&mut net, &images, &labels);
        let cfg = PowerIterConfig {
            max_iters: 5,
            tol: 1e-3,
            eps: 1e-3,
            restarts: 1,
            seed: 1,
        };
        std::hint::black_box(power_iteration(&mut oracle, &params, cfg).unwrap());
    });
}
