//! Read-only introspection of a recorded tape.
//!
//! [`Graph::trace`] lowers the private [`Op`](crate::graph) tape into a
//! flat, owned intermediate representation — one [`NodeTrace`] per node —
//! that static-analysis tooling (the `hero-analyze` verifier) can inspect
//! without access to the graph internals or the saved backward context
//! tensors. [`Graph::to_dot`] renders the same view as Graphviz for
//! debugging.
//!
//! The IR is deliberately plain data: a tape verifier must be able to
//! build *malformed* tapes for its own tests (dangling parents, lying
//! shapes), which the `Graph` builder API makes impossible by
//! construction.

use crate::graph::{Graph, Op};
use hero_tensor::ConvGeometry;

/// One tape node, lowered to plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrace {
    /// Position in the tape (parents must refer to smaller indices).
    pub index: usize,
    /// Stable op name (e.g. `"matmul"`, `"conv2d"`).
    pub op: &'static str,
    /// Parent node indices, in operand order.
    pub parents: Vec<usize>,
    /// Dimensions of the recorded forward value.
    pub shape: Vec<usize>,
    /// Op-specific metadata needed for static shape checking.
    pub detail: TraceDetail,
}

/// Extra per-op metadata carried by a [`NodeTrace`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceDetail {
    /// The op needs no extra metadata.
    None,
    /// Reshape: the parent shape recorded at build time.
    Reshape {
        /// Dimensions of the parent value when the op was recorded.
        from: Vec<usize>,
    },
    /// Convolution (regular or depthwise): the window geometry.
    Conv {
        /// Window geometry recorded at build time.
        geom: ConvGeometry,
    },
    /// Average pooling: the window side.
    AvgPool {
        /// Window side length.
        k: usize,
    },
    /// Max pooling: the saved argmax routing summarized.
    MaxPool {
        /// Number of saved argmax entries (one per output element).
        outputs: usize,
        /// Largest saved flat source index, if any entries exist.
        max_source: Option<usize>,
    },
    /// Classification loss: how many labels were recorded.
    Loss {
        /// Length of the recorded label vector.
        labels: usize,
    },
    /// Scalar-constant ops (`scale`, `add_scalar`, `leaky_relu`): the
    /// constant operand / negative-side slope.
    Scalar {
        /// The recorded constant.
        c: f32,
    },
    /// Batch normalization: the largest saved per-channel `1/sqrt(var+eps)`
    /// and the largest recorded normalized value `|x̂|`.
    BatchNorm {
        /// Upper bound on the normalization scale across channels.
        inv_std_max: f32,
        /// Largest `|x̂|` the recorded forward actually produced
        /// (`f32::INFINITY` when the saved tensor holds NaN). Batch-specific:
        /// only valid for reasoning about the recorded run itself.
        xhat_abs_max: f32,
    },
    /// Dropout: the largest entry of the saved `mask / keep_prob`.
    Dropout {
        /// Upper bound on the mask scaling (0 when everything dropped).
        max_scale: f32,
    },
    /// MSE loss: the recorded constant target's value range.
    Mse {
        /// Smallest target element.
        target_lo: f32,
        /// Largest target element.
        target_hi: f32,
    },
}

/// Largest absolute value in `data`, or `f32::INFINITY` when any element
/// is NaN (an unusable magnitude must never read as a small finite one).
fn abs_max_or_inf(data: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &v in data {
        if v.is_nan() {
            return f32::INFINITY;
        }
        acc = acc.max(v.abs());
    }
    acc
}

impl Op {
    /// Stable, lowercase op name used in diagnostics and DOT output.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Op::Input => "input",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Scale(..) => "scale",
            Op::AddScalar(..) => "add_scalar",
            Op::Matmul(..) => "matmul",
            Op::Relu(..) => "relu",
            Op::Relu6(..) => "relu6",
            Op::Square(..) => "square",
            Op::Reshape(..) => "reshape",
            Op::Sum(..) => "sum",
            Op::Mean(..) => "mean",
            Op::Conv2d { .. } => "conv2d",
            Op::DepthwiseConv2d { .. } => "depthwise_conv2d",
            Op::BatchNorm { .. } => "batch_norm",
            Op::MaxPool { .. } => "max_pool2d",
            Op::AvgPool { .. } => "avg_pool2d",
            Op::GlobalAvgPool(..) => "global_avg_pool2d",
            Op::CrossEntropy { .. } => "cross_entropy",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Ln(..) => "ln",
            Op::Dropout { .. } => "dropout",
            Op::MseLoss { .. } => "mse_loss",
            Op::CrossEntropySmoothed { .. } => "cross_entropy_smoothed",
        }
    }

    /// Parent node indices in operand order.
    pub(crate) fn parents(&self) -> Vec<usize> {
        match self {
            Op::Input => vec![],
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::Matmul(a, b) => vec![*a, *b],
            Op::Scale(a, _)
            | Op::AddScalar(a, _)
            | Op::Relu(a)
            | Op::Relu6(a)
            | Op::Square(a)
            | Op::Reshape(a, _)
            | Op::Sum(a)
            | Op::Mean(a)
            | Op::GlobalAvgPool(a)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::LeakyRelu(a, _)
            | Op::Ln(a) => vec![*a],
            Op::Conv2d { x, w, .. } | Op::DepthwiseConv2d { x, w, .. } => vec![*x, *w],
            Op::BatchNorm { x, gamma, beta, .. } => vec![*x, *gamma, *beta],
            Op::MaxPool { x, .. }
            | Op::AvgPool { x, .. }
            | Op::Dropout { x, .. }
            | Op::MseLoss { x, .. } => vec![*x],
            Op::CrossEntropy { logits, .. } | Op::CrossEntropySmoothed { logits, .. } => {
                vec![*logits]
            }
        }
    }

    fn detail(&self) -> TraceDetail {
        match self {
            Op::Reshape(_, from) => TraceDetail::Reshape {
                from: from.dims().to_vec(),
            },
            Op::Conv2d { geom, .. } | Op::DepthwiseConv2d { geom, .. } => {
                TraceDetail::Conv { geom: *geom }
            }
            Op::AvgPool { k, .. } => TraceDetail::AvgPool { k: *k },
            Op::MaxPool { arg, .. } => TraceDetail::MaxPool {
                outputs: arg.len(),
                max_source: arg.iter().copied().max(),
            },
            Op::CrossEntropy { labels, .. } | Op::CrossEntropySmoothed { labels, .. } => {
                TraceDetail::Loss {
                    labels: labels.len(),
                }
            }
            Op::Scale(_, c) | Op::AddScalar(_, c) | Op::LeakyRelu(_, c) => {
                TraceDetail::Scalar { c: *c }
            }
            Op::BatchNorm { inv_std, xhat, .. } => TraceDetail::BatchNorm {
                inv_std_max: inv_std.iter().copied().fold(0.0, f32::max),
                xhat_abs_max: abs_max_or_inf(xhat.data()),
            },
            Op::Dropout { scaled_mask, .. } => TraceDetail::Dropout {
                max_scale: scaled_mask.data().iter().copied().fold(0.0, f32::max),
            },
            Op::MseLoss {
                target_lo,
                target_hi,
                ..
            } => TraceDetail::Mse {
                target_lo: *target_lo,
                target_hi: *target_hi,
            },
            _ => TraceDetail::None,
        }
    }
}

impl Graph {
    /// Lowers the tape into the plain-data trace IR, one [`NodeTrace`] per
    /// recorded node in tape order.
    pub fn trace(&self) -> Vec<NodeTrace> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(index, node)| NodeTrace {
                index,
                op: node.op.name(),
                parents: node.op.parents(),
                shape: node.value.dims().to_vec(),
                detail: node.op.detail(),
            })
            .collect()
    }

    /// The recorded min/max of every `input` node's value, as
    /// `(node_index, lo, hi)` triples in tape order.
    ///
    /// This is the natural seeding for the `hero-analyze` interval pass:
    /// parameters and batch tensors enter the tape as inputs, so their
    /// real statistics bound the abstract ranges. A tensor containing NaN
    /// reports `(NaN, NaN)` so the analyzer can flag it rather than
    /// silently narrowing over it.
    pub fn input_ranges(&self) -> Vec<(usize, f32, f32)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| matches!(node.op, Op::Input))
            .map(|(i, node)| {
                let data = node.value.data();
                if data.iter().any(|v| v.is_nan()) {
                    return (i, f32::NAN, f32::NAN);
                }
                let lo = data.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                (i, lo, hi)
            })
            .collect()
    }

    /// The largest absolute value every node's recorded forward actually
    /// produced, in tape order (`f32::INFINITY` for a tensor holding NaN).
    ///
    /// These magnitudes are batch-specific: they bound the recorded run
    /// only, not every run the tape shape admits. The relational noise
    /// domain in `hero-analyze` uses them to certify the *two-run*
    /// difference `f(x+δ) − f(x)` against this exact trace, which is what
    /// the quantization crosscheck measures.
    pub fn value_abs_max(&self) -> Vec<f32> {
        self.nodes
            .iter()
            .map(|node| abs_max_or_inf(node.value.data()))
            .collect()
    }

    /// Renders the tape as a Graphviz `digraph` (nodes labelled with index,
    /// op name and value shape; edges point from parent to child).
    ///
    /// # Examples
    ///
    /// ```
    /// use hero_autodiff::Graph;
    /// use hero_tensor::Tensor;
    ///
    /// let mut g = Graph::new();
    /// let x = g.input(Tensor::arange(4));
    /// let y = g.square(x);
    /// let _loss = g.sum(y);
    /// let dot = g.to_dot();
    /// assert!(dot.starts_with("digraph tape {"));
    /// assert!(dot.contains("square"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph tape {\n  rankdir=TB;\n  node [shape=box];\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let shape = node.value.dims();
            let style = if matches!(node.op, Op::Input) {
                ", style=filled, fillcolor=lightgray"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{i} [label=\"#{i} {}\\n{:?}\"{style}];",
                node.op.name(),
                shape
            );
            for p in node.op.parents() {
                let _ = writeln!(out, "  n{p} -> n{i};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::Tensor;

    #[test]
    fn trace_reflects_tape_order_and_parents() {
        let mut g = Graph::new();
        let a = g.input(Tensor::arange(6));
        let m = g.reshape(a, [2, 3]).unwrap();
        let b = g.input(Tensor::from_fn([3, 2], |_| 0.5));
        let c = g.matmul(m, b).unwrap();
        let loss = g.sum(c);
        let tape = g.trace();
        assert_eq!(tape.len(), 5);
        assert_eq!(tape[0].op, "input");
        assert_eq!(tape[1].op, "reshape");
        assert_eq!(tape[1].parents, vec![a.index()]);
        assert_eq!(tape[1].detail, TraceDetail::Reshape { from: vec![6] });
        assert_eq!(tape[3].op, "matmul");
        assert_eq!(tape[3].parents, vec![m.index(), b.index()]);
        assert_eq!(tape[3].shape, vec![2, 2]);
        assert_eq!(tape[loss.index()].shape, vec![] as Vec<usize>);
    }

    #[test]
    fn trace_captures_pool_and_loss_detail() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([1, 1, 4, 4], |i| (i[2] * 4 + i[3]) as f32));
        let p = g.max_pool2d(x, 2).unwrap();
        let flat = g.reshape(p, [1, 4]).unwrap();
        let loss = g.cross_entropy(flat, &[1]).unwrap();
        let tape = g.trace();
        match &tape[p.index()].detail {
            TraceDetail::MaxPool {
                outputs,
                max_source,
            } => {
                assert_eq!(*outputs, 4);
                assert_eq!(*max_source, Some(15));
            }
            other => panic!("unexpected detail {other:?}"),
        }
        assert_eq!(tape[loss.index()].detail, TraceDetail::Loss { labels: 1 });
    }

    #[test]
    fn dot_output_lists_every_node_and_edge() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(3));
        let y = g.square(x);
        let s = g.sum(y);
        let dot = g.to_dot();
        assert!(dot.contains("n0 [label=\"#0 input"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.ends_with("}\n"));
        let _ = s;
    }
}
