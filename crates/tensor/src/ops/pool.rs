//! Spatial pooling primitives for NCHW tensors.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

impl Tensor {
    /// Non-overlapping average pooling with a square window of side `k`.
    ///
    /// # Errors
    ///
    /// Returns rank/geometry errors if the input is not 4-D or not evenly
    /// divisible by `k`.
    pub fn avg_pool2d(&self, k: usize) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
            });
        }
        let (n, c, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        if k == 0 || h % k != 0 || w % k != 0 {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {k} does not divide {h}x{w}"
            )));
        }
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros([n, c, oh, ow]);
        let inv = 1.0 / (k * k) as f32;
        for in_ in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let src = (((in_ * c) + ch) * h + oy * k + ky) * w + ox * k + kx;
                                acc += self.data()[src];
                            }
                        }
                        let dst = (((in_ * c) + ch) * oh + oy) * ow + ox;
                        out.data_mut()[dst] = acc * inv;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Adjoint of [`Tensor::avg_pool2d`]: spreads each pooled gradient
    /// uniformly back over its window. `h` and `w` are the pre-pool extents.
    ///
    /// # Errors
    ///
    /// Returns shape/geometry errors mirroring the forward op.
    pub fn avg_unpool2d(&self, k: usize, h: usize, w: usize) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
            });
        }
        let (n, c, oh, ow) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        if k == 0 || oh * k != h || ow * k != w {
            return Err(TensorError::InvalidGeometry(format!(
                "unpool target {h}x{w} is not {oh}x{ow} scaled by {k}"
            )));
        }
        let mut out = Tensor::zeros([n, c, h, w]);
        let inv = 1.0 / (k * k) as f32;
        for in_ in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = self.data()[(((in_ * c) + ch) * oh + oy) * ow + ox] * inv;
                        for ky in 0..k {
                            for kx in 0..k {
                                let dst = (((in_ * c) + ch) * h + oy * k + ky) * w + ox * k + kx;
                                out.data_mut()[dst] += g;
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Non-overlapping max pooling with a square window of side `k`.
    /// Returns the pooled tensor and the flat argmax index of every window
    /// (for routing gradients in the backward pass).
    ///
    /// # Errors
    ///
    /// Returns rank/geometry errors if the input is not 4-D or not evenly
    /// divisible by `k`.
    pub fn max_pool2d(&self, k: usize) -> Result<(Tensor, Vec<usize>)> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
            });
        }
        let (n, c, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        if k == 0 || h % k != 0 || w % k != 0 {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {k} does not divide {h}x{w}"
            )));
        }
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros([n, c, oh, ow]);
        let mut arg = vec![0usize; n * c * oh * ow];
        for in_ in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_src = 0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let src = (((in_ * c) + ch) * h + oy * k + ky) * w + ox * k + kx;
                                if self.data()[src] > best {
                                    best = self.data()[src];
                                    best_src = src;
                                }
                            }
                        }
                        let dst = (((in_ * c) + ch) * oh + oy) * ow + ox;
                        out.data_mut()[dst] = best;
                        arg[dst] = best_src;
                    }
                }
            }
        }
        Ok((out, arg))
    }

    /// Global average pooling: `(n, c, h, w) -> (n, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the rank is 4.
    pub fn global_avg_pool2d(&self) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: self.rank(),
            });
        }
        let (n, c, h, w) = (
            self.dims()[0],
            self.dims()[1],
            self.dims()[2],
            self.dims()[3],
        );
        let mut out = Tensor::zeros([n, c]);
        let inv = 1.0 / (h * w) as f32;
        for in_ in 0..n {
            for ch in 0..c {
                let base = ((in_ * c) + ch) * h * w;
                let acc: f32 = self.data()[base..base + h * w].iter().sum();
                out.data_mut()[in_ * c + ch] = acc * inv;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_halves_resolution() {
        let t = Tensor::arange(16).reshape([1, 1, 4, 4]).unwrap();
        let p = t.avg_pool2d(2).unwrap();
        assert_eq!(p.dims(), &[1, 1, 2, 2]);
        // window [0,1,4,5] -> 2.5
        assert_eq!(p.data(), &[2.5, 4.5, 10.5, 12.5]);
        assert!(t.avg_pool2d(3).is_err());
        assert!(t.avg_pool2d(0).is_err());
    }

    #[test]
    fn avg_unpool_is_adjoint() {
        let x = Tensor::from_fn([1, 2, 4, 4], |i| (i.iter().sum::<usize>() % 5) as f32);
        let y = Tensor::from_fn([1, 2, 2, 2], |i| (i.iter().sum::<usize>() % 3) as f32 - 1.0);
        let lhs = x.avg_pool2d(2).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&y.avg_unpool2d(2, 4, 4).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-4);
        assert!(y.avg_unpool2d(2, 5, 4).is_err());
    }

    #[test]
    fn max_pool_returns_max_and_indices() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap();
        let (p, arg) = t.max_pool2d(2).unwrap();
        assert_eq!(p.data(), &[4.0]);
        assert_eq!(arg, vec![3]);
    }

    #[test]
    fn max_pool_handles_negatives() {
        let t = Tensor::from_vec(vec![-4.0, -2.0, -3.0, -1.0], [1, 1, 2, 2]).unwrap();
        let (p, arg) = t.max_pool2d(2).unwrap();
        assert_eq!(p.data(), &[-1.0]);
        assert_eq!(arg, vec![3]);
    }

    #[test]
    fn global_avg_pool_reduces_spatial() {
        let t = Tensor::arange(8).reshape([1, 2, 2, 2]).unwrap();
        let g = t.global_avg_pool2d().unwrap();
        assert_eq!(g.dims(), &[1, 2]);
        assert_eq!(g.data(), &[1.5, 5.5]);
        assert!(Tensor::zeros([2, 2]).global_avg_pool2d().is_err());
    }
}
