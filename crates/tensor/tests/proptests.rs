//! Property-based tests for tensor invariants.

use hero_tensor::{global_norm_l2, ConvGeometry, Shape, Tensor};
use proptest::prelude::*;

/// Strategy producing a small shape (rank 1..=4, dims 1..=6).
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=6, 1..=4)
}

/// Strategy producing a tensor with the given shape filled with small floats.
fn tensor_of(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-100.0f32..100.0, n)
        .prop_map(move |data| Tensor::from_vec(data, dims.clone()).unwrap())
}

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_of)
}

proptest! {
    #[test]
    fn offset_unravel_roundtrip(dims in small_shape(), salt in 0usize..1000) {
        let shape = Shape::new(dims);
        let flat = salt % shape.numel();
        let idx = shape.unravel(flat);
        prop_assert_eq!(shape.offset(&idx).unwrap(), flat);
    }

    #[test]
    fn add_is_commutative(t in arb_tensor()) {
        let u = t.map(|v| v * 0.5 - 1.0);
        let ab = t.add(&u).unwrap();
        let ba = u.add(&t).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn sub_then_add_roundtrips(t in arb_tensor()) {
        let u = t.map(|v| v * 0.25 + 2.0);
        let back = t.sub(&u).unwrap().add(&u).unwrap();
        for (a, b) in back.data().iter().zip(t.data()) {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn norm_inequality_chain(t in arb_tensor()) {
        // ||x||_inf <= ||x||_2 <= ||x||_1
        let eps = 1e-2;
        prop_assert!(t.norm_linf() <= t.norm_l2() + eps);
        prop_assert!(t.norm_l2() <= t.norm_l1() + eps);
        // ||x||_1 <= sqrt(n) ||x||_2
        prop_assert!(t.norm_l1() <= (t.numel() as f32).sqrt() * t.norm_l2() + eps);
    }

    #[test]
    fn triangle_inequality_l2(t in arb_tensor()) {
        let u = t.map(|v| 3.0 - v * 0.5);
        let s = t.add(&u).unwrap();
        prop_assert!(s.norm_l2() <= t.norm_l2() + u.norm_l2() + 1e-2);
    }

    #[test]
    fn reshape_preserves_sum(t in arb_tensor()) {
        let flat = t.flatten();
        prop_assert_eq!(flat.sum(), t.sum());
        prop_assert_eq!(flat.numel(), t.numel());
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000
    ) {
        // (A)(B + C) == AB + AC
        let f = |s: u64, r: usize, c: usize| {
            Tensor::from_fn([r, c], |i| (((i[0] * 31 + i[1] * 17) as u64 + s) % 13) as f32 - 6.0)
        };
        let a = f(seed, m, k);
        let b = f(seed + 1, k, n);
        let c = f(seed + 2, k, n);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_transpose_identity(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..100) {
        // (AB)^T == B^T A^T
        let f = |s: u64, r: usize, c: usize| {
            Tensor::from_fn([r, c], |i| (((i[0] * 7 + i[1] * 3) as u64 + s) % 11) as f32 - 5.0)
        };
        let a = f(seed, m, k);
        let b = f(seed + 5, k, n);
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn softmax_rows_is_probability_distribution(rows in 1usize..5, cols in 1usize..6, seed in 0u64..100) {
        let t = Tensor::from_fn([rows, cols], |i| {
            (((i[0] * 13 + i[1] * 7) as u64 + seed) % 19) as f32 - 9.0
        });
        let s = t.softmax_rows().unwrap();
        for r in 0..rows {
            let sum: f32 = s.data()[r * cols..(r + 1) * cols].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.data()[r * cols..(r + 1) * cols].iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        hw in 3usize..7, k in 1usize..4, stride in 1usize..3, pad in 0usize..2, seed in 0u64..50
    ) {
        prop_assume!(k <= hw + 2 * pad);
        let geom = ConvGeometry::new(hw, hw, k, stride, pad).unwrap();
        let x = Tensor::from_fn([1, 2, hw, hw], |i| {
            ((i.iter().sum::<usize>() as u64 + seed) % 9) as f32 - 4.0
        });
        let cols = x.im2col(&geom).unwrap();
        let y = Tensor::from_fn([cols.dims()[0], cols.dims()[1]], |i| {
            (((i[0] * 3 + i[1] * 5) as u64 + seed) % 7) as f32 - 3.0
        });
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&y.col2im(&geom, 1, 2).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()));
    }

    #[test]
    fn pad_crop_roundtrip(n in 1usize..3, c in 1usize..3, hw in 1usize..5, pad in 0usize..3) {
        let t = Tensor::from_fn([n, c, hw, hw], |i| i.iter().sum::<usize>() as f32);
        let roundtrip = t.pad2d(pad).unwrap().crop2d(pad).unwrap();
        prop_assert_eq!(roundtrip, t);
    }

    #[test]
    fn global_norm_matches_concat(a in arb_tensor(), b in arb_tensor()) {
        let concat_sq = a.norm_l2_sq() + b.norm_l2_sq();
        let g = global_norm_l2(&[a, b]);
        prop_assert!((g * g - concat_sq).abs() < 1e-1 * (1.0 + concat_sq));
    }

    #[test]
    fn broadcast_reduce_adjoint(rows in 1usize..5, cols in 1usize..5, seed in 0u64..100) {
        // <broadcast(x), y> == <x, reduce(y)>
        let x = Tensor::from_fn([cols], |i| ((i[0] as u64 + seed) % 5) as f32 - 2.0);
        let y = Tensor::from_fn([rows, cols], |i| {
            (((i[0] * 3 + i[1]) as u64 + seed) % 7) as f32 - 3.0
        });
        let bx = Tensor::zeros([rows, cols]).badd(&x).unwrap();
        let lhs = bx.dot(&y).unwrap();
        let rhs = x.dot(&y.reduce_to_shape(x.shape()).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }
}
