//! Lanczos iteration over Hessian-vector products: Ritz-value estimates of
//! the Hessian spectrum (the quadrature rule behind stochastic Lanczos
//! quadrature), extending the single-eigenvalue power iteration to
//! whole-spectrum summaries.
//!
//! The Krylov basis is kept and every new direction is re-orthogonalized
//! against *all* previous basis vectors (two classical Gram–Schmidt
//! passes). In floating point, plain three-term Lanczos loses
//! orthogonality as soon as a Ritz pair converges and then re-discovers
//! the same eigenvalue as a spurious "ghost" copy — fatal for quadrature
//! weights, which ghosts silently split. Full reorthogonalization costs
//! `O(steps² · dim)` flops (no extra gradient evaluations, which dominate
//! here) and keeps the density estimate honest; see DESIGN.md §15.

use crate::hvp::{fd_hvp, GradOracle};
use hero_tensor::rng::Rng;
use hero_tensor::{fill_standard_normal, global_dot, global_norm_l2, Result, Tensor, TensorError};

/// Breakdown threshold: a residual norm at or below this means the Krylov
/// space is exhausted (happy breakdown) and iteration stops cleanly.
const BREAKDOWN_TOL: f32 = 1e-7;

/// Result of a Lanczos run: Ritz values (eigenvalue estimates) and their
/// quadrature weights.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Ritz values, ascending. The extremes converge first: the last entry
    /// estimates λ_max, the first λ_min.
    pub ritz_values: Vec<f32>,
    /// Quadrature weight of each Ritz value (squared first eigenvector
    /// components; they sum to 1). Together with the Ritz values these give
    /// the stochastic-Lanczos-quadrature estimate of the spectral density.
    pub weights: Vec<f32>,
    /// Krylov steps actually performed (may stop early on breakdown).
    pub steps: usize,
}

impl LanczosResult {
    /// Largest Ritz value — the λ_max estimate (the `v` of Theorem 3).
    pub fn lambda_max(&self) -> f32 {
        self.ritz_values.last().copied().unwrap_or(0.0)
    }

    /// Smallest Ritz value — the λ_min estimate (negative at saddles).
    pub fn lambda_min(&self) -> f32 {
        self.ritz_values.first().copied().unwrap_or(0.0)
    }

    /// Quadrature estimate of `trace(H)/n ≈ Σ wᵢ λᵢ` (the first spectral
    /// moment under the probe distribution).
    pub fn mean_eigenvalue(&self) -> f32 {
        self.ritz_values
            .iter()
            .zip(&self.weights)
            .map(|(&l, &w)| l * w)
            .sum()
    }

    /// Quadrature estimate of the second spectral moment `Σ wᵢ λᵢ²` — the
    /// per-dimension analogue of HERO's regularizer Σλᵢ² (Eq. 13).
    pub fn second_moment(&self) -> f32 {
        self.ritz_values
            .iter()
            .zip(&self.weights)
            .map(|(&l, &w)| l * l * w)
            .sum()
    }
}

/// Runs `steps` of Lanczos iteration on the Hessian at `params` with a
/// random unit start vector, using finite-difference HVPs (one gradient
/// evaluation per step) and full reorthogonalization of the Krylov basis.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for zero steps or a
/// non-finite tridiagonal entry (an oracle returning NaN/Inf gradients),
/// and propagates oracle errors.
pub fn lanczos_spectrum(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    steps: usize,
    eps: f32,
    rng: &mut impl Rng,
) -> Result<LanczosResult> {
    // v1: random unit vector (a standard-normal draw is zero with
    // probability zero, and lanczos_spectrum_from re-checks the norm).
    let v0: Vec<Tensor> = params
        .iter()
        .map(|p| {
            let mut t = Tensor::zeros(p.shape().clone());
            fill_standard_normal(&mut t, rng);
            t
        })
        .collect();
    lanczos_spectrum_from(oracle, params, &v0, steps, eps)
}

/// [`lanczos_spectrum`] with an explicit start direction `v0` (not
/// necessarily normalized) — the seeded-probe entry point stochastic
/// Lanczos quadrature uses so every probe is reproducible.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for zero steps, a zero (or
/// non-finite) start direction, or a non-finite tridiagonal entry, and
/// propagates oracle errors.
pub fn lanczos_spectrum_from(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    v0: &[Tensor],
    steps: usize,
    eps: f32,
) -> Result<LanczosResult> {
    if steps == 0 {
        return Err(TensorError::InvalidArgument(
            "lanczos needs at least one step".into(),
        ));
    }
    let _obs = hero_obs::span("lanczos");
    let n0 = global_norm_l2(v0);
    if !n0.is_finite() || n0 <= f32::MIN_POSITIVE {
        return Err(TensorError::InvalidArgument(format!(
            "lanczos start direction has norm {n0}; probes must be nonzero and finite"
        )));
    }
    let (_, base_grad) = oracle.grad(params)?;
    let mut v: Vec<Tensor> = v0.to_vec();
    for t in &mut v {
        t.scale_in_place(1.0 / n0);
    }
    // The full Krylov basis, kept for reorthogonalization.
    let mut basis: Vec<Vec<Tensor>> = Vec::with_capacity(steps);
    let mut alphas = Vec::with_capacity(steps);
    let mut betas: Vec<f32> = Vec::new();
    for _ in 0..steps {
        let mut w = fd_hvp(oracle, params, &base_grad, &v, eps)?;
        let alpha = global_dot(&v, &w);
        if !alpha.is_finite() {
            return Err(TensorError::InvalidArgument(format!(
                "lanczos produced a non-finite diagonal entry ({alpha}); \
                 the oracle returned NaN/Inf gradients"
            )));
        }
        alphas.push(alpha);
        basis.push(std::mem::take(&mut v));
        // Full reorthogonalization: two classical Gram–Schmidt passes of
        // w against every basis vector (the second pass mops up the
        // rounding the first one leaves behind — "twice is enough").
        for _ in 0..2 {
            for q in &basis {
                let proj = global_dot(&w, q);
                for (wi, qi) in w.iter_mut().zip(q) {
                    wi.axpy(-proj, qi)?;
                }
            }
        }
        let beta = global_norm_l2(&w);
        if !beta.is_finite() {
            return Err(TensorError::InvalidArgument(format!(
                "lanczos produced a non-finite off-diagonal entry ({beta}); \
                 the oracle returned NaN/Inf gradients"
            )));
        }
        if beta <= BREAKDOWN_TOL {
            break; // Krylov space exhausted (happy breakdown).
        }
        betas.push(beta);
        for wi in &mut w {
            wi.scale_in_place(1.0 / beta);
        }
        v = w;
    }
    let k = alphas.len();
    betas.truncate(k.saturating_sub(1));
    let (ritz_values, weights) = tridiag_eigen(&alphas, &betas);
    Ok(LanczosResult {
        ritz_values,
        weights,
        steps: k,
    })
}

/// Eigenvalues and squared-first-component weights of a symmetric
/// tridiagonal matrix, via the implicit-shift QL algorithm (EISPACK tql2).
fn tridiag_eigen(alphas: &[f32], betas: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let n = alphas.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut d: Vec<f64> = alphas.iter().map(|&a| a as f64).collect();
    let mut e: Vec<f64> = betas.iter().map(|&b| b as f64).collect();
    e.resize(n, 0.0);
    // z holds the first row of the accumulating eigenvector matrix.
    let mut z = vec![0.0f64; n];
    z[0] = 1.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                break; // give up on this eigenvalue; rare at our sizes
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the first-row eigenvector components.
                f = z[i + 1];
                z[i + 1] = s * z[i] + c * f;
                z[i] = c * z[i] - s * f;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    // Sort ascending by eigenvalue, carrying weights along.
    let mut pairs: Vec<(f64, f64)> = d.into_iter().zip(z).map(|(v, zz)| (v, zz * zz)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f32> = pairs.iter().map(|&(v, _)| v as f32).collect();
    let weights: Vec<f32> = pairs.iter().map(|&(_, w)| w as f32).collect();
    (values, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::Quadratic;
    use hero_tensor::rng::StdRng;

    #[test]
    fn tridiag_eigen_of_diagonal_matrix() {
        let (vals, weights) = tridiag_eigen(&[3.0, 1.0, 2.0], &[0.0, 0.0]);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        // Start vector e1 puts all weight on the first diagonal entry (3.0).
        let total: f32 = weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!((weights[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn tridiag_eigen_of_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3 with equal weights.
        let (vals, weights) = tridiag_eigen(&[2.0, 2.0], &[1.0]);
        assert!((vals[0] - 1.0).abs() < 1e-4);
        assert!((vals[1] - 3.0).abs() < 1e-4);
        assert!((weights[0] - 0.5).abs() < 1e-4);
        assert!((weights[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn lanczos_recovers_full_spectrum_of_small_quadratic() {
        let q = Quadratic::diag(&[1.0, 2.0, 5.0, 9.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([4])];
        let res =
            lanczos_spectrum(&mut oracle, &params, 4, 1e-3, &mut StdRng::seed_from_u64(3)).unwrap();
        assert!(
            (res.lambda_max() - 9.0).abs() < 0.2,
            "λmax {}",
            res.lambda_max()
        );
        assert!(
            (res.lambda_min() - 1.0).abs() < 0.2,
            "λmin {}",
            res.lambda_min()
        );
        // With the full Krylov space, all four eigenvalues appear.
        assert_eq!(res.ritz_values.len(), 4);
        for (got, want) in res.ritz_values.iter().zip(&[1.0, 2.0, 5.0, 9.0]) {
            assert!((got - want).abs() < 0.3, "{got} vs {want}");
        }
    }

    #[test]
    fn lanczos_extremes_converge_with_few_steps() {
        let eigs: Vec<f32> = (1..=20).map(|i| i as f32 * 0.5).collect();
        let q = Quadratic::diag(&eigs);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([20])];
        let res =
            lanczos_spectrum(&mut oracle, &params, 8, 1e-3, &mut StdRng::seed_from_u64(5)).unwrap();
        assert!(
            (res.lambda_max() - 10.0).abs() < 0.5,
            "λmax {}",
            res.lambda_max()
        );
        assert!(res.lambda_min() < 1.5);
    }

    #[test]
    fn quadrature_moments_match_diagonal_quadratic() {
        // mean eigenvalue = tr(H)/n, second moment = Σλ²/n under random probes
        // (averaged over probes; a single probe is noisy, so use tolerance).
        let q = Quadratic::diag(&[1.0, 3.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([2])];
        let mut mean_acc = 0.0;
        let mut second_acc = 0.0;
        let mut rng = StdRng::seed_from_u64(11);
        let probes = 32;
        for _ in 0..probes {
            let res = lanczos_spectrum(&mut oracle, &params, 2, 1e-3, &mut rng).unwrap();
            mean_acc += res.mean_eigenvalue();
            second_acc += res.second_moment();
        }
        let mean = mean_acc / probes as f32;
        let second = second_acc / probes as f32;
        assert!((mean - 2.0).abs() < 0.3, "tr/n estimate {mean}");
        assert!((second - 5.0).abs() < 1.0, "Σλ²/n estimate {second}");
    }

    #[test]
    fn detects_negative_curvature() {
        let q = Quadratic::diag(&[-2.0, 1.0, 4.0]);
        let mut oracle = q.oracle();
        let params = vec![Tensor::zeros([3])];
        let res =
            lanczos_spectrum(&mut oracle, &params, 3, 1e-3, &mut StdRng::seed_from_u64(7)).unwrap();
        assert!(res.lambda_min() < -1.5, "λmin {}", res.lambda_min());
        assert!(res.lambda_max() > 3.5);
    }

    #[test]
    fn validates_step_count() {
        let q = Quadratic::diag(&[1.0]);
        let params = vec![Tensor::zeros([1])];
        assert!(lanczos_spectrum(
            &mut q.oracle(),
            &params,
            0,
            1e-3,
            &mut StdRng::seed_from_u64(0)
        )
        .is_err());
    }

    #[test]
    fn weights_are_a_probability_distribution() {
        let q = Quadratic::diag(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let params = vec![Tensor::zeros([5])];
        let res = lanczos_spectrum(
            &mut q.oracle(),
            &params,
            5,
            1e-3,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap();
        let total: f32 = res.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "weights sum {total}");
        assert!(res.weights.iter().all(|&w| w >= -1e-6));
    }
}
