//! Quantization-noise preflight: certified static sensitivity and its
//! empirical cross-validation.
//!
//! This module wires `hero-analyze`'s forward quantization-noise pass
//! (DESIGN.md §14) to real networks:
//!
//! * [`preflight_report_with_noise`] — one probe tape, the full analyzer
//!   suite, plus noise seeds on every quantizable weight tensor (uniform
//!   or per-layer bit widths) so the report carries certified per-node
//!   error bounds and the noise-dominance / error-budget lints.
//! * [`static_sensitivity_matrix`] — the certified
//!   [`SensitivityMatrix`] `err[layer][bits]`: one tape and one
//!   interval/scale analysis, then one cheap noise propagation per
//!   `(layer, bits)` cell seeding that layer alone.
//! * [`certified_noise_bounds`] — the whole-network bound per bit width
//!   (all layers seeded at once), the cheap dominance gate used by
//!   `quant_sweep`.
//! * [`noise_crosscheck`] — the adversarial check: per-layer fake-quant
//!   (and random in-bin perturbation) probe-loss trials, confirming the
//!   static bound dominates every measured error and that the static
//!   sensitivity *ranking* agrees with the empirical one.

use hero_analyze::{relational_noise_pass, NoiseSeed, Report, VerifyOptions};
use hero_autodiff::Graph;
use hero_nn::Network;
use hero_quant::{quantize_tensor, QuantScheme, SensitivityMatrix, StaticSensitivity};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::{Result, Tensor, TensorError};

/// Relative slack for the dominance comparison: the certified bound is
/// computed in widened interval arithmetic and must exceed the measured
/// error outright; the epsilon only absorbs the final `f32` compare.
const DOMINANCE_REL_TOL: f32 = 1e-4;
/// Absolute slack for the dominance comparison near zero loss deltas.
const DOMINANCE_ABS_TOL: f32 = 1e-6;

/// Bit widths for the noise seeds of a preflight run.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseBits {
    /// Same width for every quantizable tensor.
    Uniform(u8),
    /// One width per quantizable tensor, in network parameter order (the
    /// order of [`hero_quant::network_sensitivities`]).
    PerLayer(Vec<u8>),
}

/// Configuration for a noise-seeded preflight.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Where the weight grids sit.
    pub bits: NoiseBits,
    /// Optional certified output-error budget; exceeding it at the loss
    /// root raises [`hero_analyze::DiagCode::QuantErrorBudgetExceeded`].
    pub budget: Option<f32>,
}

impl NoiseConfig {
    /// Uniform `bits` everywhere, no budget.
    pub fn uniform(bits: u8) -> Self {
        NoiseConfig {
            bits: NoiseBits::Uniform(bits),
            budget: None,
        }
    }

    /// Per-layer widths (quantizable-tensor order), no budget.
    pub fn per_layer(bits: Vec<u8>) -> Self {
        NoiseConfig {
            bits: NoiseBits::PerLayer(bits),
            budget: None,
        }
    }

    /// Sets the certified error budget.
    #[must_use]
    pub fn with_budget(mut self, budget: f32) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The width for quantizable tensor `ordinal` out of `total`.
    fn bits_for(&self, ordinal: usize, total: usize) -> Result<u8> {
        match &self.bits {
            NoiseBits::Uniform(b) => Ok(*b),
            NoiseBits::PerLayer(v) => {
                if v.len() != total {
                    return Err(TensorError::InvalidArgument(format!(
                        "{} per-layer bit widths for {total} quantizable tensors",
                        v.len()
                    )));
                }
                Ok(v[ordinal])
            }
        }
    }
}

/// Builds one noise seed per quantizable parameter from the forward
/// tape's parameter variables.
fn build_seeds(
    net: &Network,
    vars: &[hero_autodiff::Var],
    noise: &NoiseConfig,
) -> Result<Vec<NoiseSeed>> {
    let params = net.params();
    let infos = net.param_infos();
    let total = infos.iter().filter(|i| i.kind.is_quantizable()).count();
    let mut seeds = Vec::with_capacity(total);
    let mut ordinal = 0usize;
    for ((var, param), info) in vars.iter().zip(&params).zip(&infos) {
        if !info.kind.is_quantizable() {
            continue;
        }
        let bits = noise.bits_for(ordinal, total)?;
        QuantScheme::symmetric(bits)?;
        seeds.push(NoiseSeed::for_quantized_weight(
            var.index(),
            param.norm_linf(),
            bits,
        ));
        ordinal += 1;
    }
    Ok(seeds)
}

/// [`crate::trainer::preflight_report`] plus an optional quantization-noise
/// configuration: when `noise` is set, every quantizable weight tensor is
/// seeded with `‖δW‖∞ ≤ Δ(bits)/2` and the report carries the certified
/// per-node error bounds, the noise-dominance lint and (with a budget)
/// the error-budget lint. Never errors on diagnostics.
///
/// # Errors
///
/// Returns shape errors if the batch is incompatible with the network, or
/// [`TensorError::InvalidArgument`] for invalid bit widths / per-layer
/// arity.
pub fn preflight_report_with_noise(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    opts: &VerifyOptions,
    noise: Option<&NoiseConfig>,
    render_dot: bool,
) -> Result<(Report, Option<String>)> {
    let prev = hero_nn::norm::set_bn_running_stat_updates(false);
    let mut g = Graph::new();
    let built = net
        .forward(&mut g, images, true)
        .and_then(|(logits, vars)| Ok((g.cross_entropy(logits, labels)?, vars)));
    hero_nn::norm::set_bn_running_stat_updates(prev);
    let (loss, vars) = built?;
    let mut opts = opts.clone();
    if let Some(noise) = noise {
        opts.noise_seeds = build_seeds(net, &vars, noise)?;
        opts.noise_budget = noise.budget;
    }
    let report = hero_analyze::verify_graph_with(&g, &[loss], &opts);
    let dot = render_dot.then(|| hero_analyze::to_dot_colored(&g.trace(), &report));
    g.reset();
    report.emit_obs(net.name());
    Ok((report, dot))
}

/// Records one frozen-BN train-mode probe forward and returns the scalar
/// cross-entropy loss — the empirical counterpart of the analyzed tape
/// (identical op sequence, so measured perturbations are exactly what
/// the noise pass bounds).
///
/// # Errors
///
/// Returns shape errors if the batch is incompatible with the network.
pub fn probe_loss(net: &mut Network, images: &Tensor, labels: &[usize]) -> Result<f32> {
    let prev = hero_nn::norm::set_bn_running_stat_updates(false);
    let mut g = Graph::new();
    let built = net
        .forward(&mut g, images, true)
        .and_then(|(logits, _)| g.cross_entropy(logits, labels));
    hero_nn::norm::set_bn_running_stat_updates(prev);
    let loss = built?;
    let value = g.value(loss).data()[0];
    g.reset();
    Ok(value)
}

/// Validates a bit-width grid: non-empty, strictly increasing, supported.
fn validate_grid(bits_grid: &[u8]) -> Result<()> {
    if bits_grid.is_empty() || !bits_grid.windows(2).all(|w| w[0] < w[1]) {
        return Err(TensorError::InvalidArgument(
            "bit grid must be non-empty and strictly increasing".into(),
        ));
    }
    for &b in bits_grid {
        QuantScheme::symmetric(b)?;
    }
    Ok(())
}

/// Computes the certified static sensitivity matrix `err[layer][bits]`
/// for `net` on one probe batch: the tape is recorded and
/// interval/scale-analyzed once, then each `(layer, bits)` cell runs one
/// relational (zonotope) noise propagation seeding that layer alone with
/// `‖δW‖∞ ≤ Δ(bits)/2`, bounding the induced loss perturbation. The
/// zonotope pass centers its base-run ranges on the recorded trace
/// magnitudes, which is what keeps the raw cells off the loss-interval
/// ceiling; the plain interval-domain cells are retained in
/// [`StaticSensitivity::err_interval`] for tightness reporting.
///
/// This is the sound replacement for the `curvature = 1` placeholder of
/// [`hero_quant::network_sensitivities`]: feed the matrix (or its
/// [`SensitivityMatrix::to_layer_sensitivities`] projection) to the bit
/// allocator.
///
/// # Errors
///
/// Returns shape errors for an incompatible batch, or
/// [`TensorError::InvalidArgument`] for a malformed grid or a tape that
/// fails structural verification.
pub fn static_sensitivity_matrix(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    bits_grid: &[u8],
) -> Result<SensitivityMatrix> {
    validate_grid(bits_grid)?;
    let _obs = hero_obs::span("static_sensitivity");
    let prev = hero_nn::norm::set_bn_running_stat_updates(false);
    let mut g = Graph::new();
    let built = net
        .forward(&mut g, images, true)
        .and_then(|(logits, vars)| Ok((g.cross_entropy(logits, labels)?, vars)));
    hero_nn::norm::set_bn_running_stat_updates(prev);
    let (loss, vars) = built?;
    let report = hero_analyze::verify_graph_with(&g, &[loss], &VerifyOptions::default());
    if report.has_errors() {
        g.reset();
        return Err(TensorError::InvalidArgument(format!(
            "static tape verification failed for `{}`:\n{report}",
            net.name()
        )));
    }
    let value = report.value.ok_or_else(|| {
        TensorError::InvalidArgument("analyzer produced no value analysis".into())
    })?;
    let tape = g.trace();
    let recorded = g.value_abs_max();
    let params = net.params();
    let infos = net.param_infos();
    let mut layers = Vec::new();
    for ((var, param), info) in vars.iter().zip(&params).zip(&infos) {
        if !info.kind.is_quantizable() {
            continue;
        }
        let max_abs = param.norm_linf();
        let grad_bound = value
            .grad_bounds
            .get(var.index())
            .copied()
            .unwrap_or(f32::INFINITY);
        let mut err = Vec::with_capacity(bits_grid.len());
        let mut err_interval = Vec::with_capacity(bits_grid.len());
        for &b in bits_grid {
            let seed = NoiseSeed::for_quantized_weight(var.index(), max_abs, b);
            let rn = relational_noise_pass(&tape, &value.intervals, Some(&recorded), &[seed]);
            err.push(rn.tightened[loss.index()].abs_max());
            err_interval.push(rn.interval[loss.index()].abs_max());
        }
        layers.push(StaticSensitivity {
            name: info.name.clone(),
            numel: param.numel(),
            max_abs,
            grad_bound,
            err,
            err_interval,
        });
    }
    g.reset();
    Ok(SensitivityMatrix {
        bits: bits_grid.to_vec(),
        layers,
    })
}

/// Certified whole-network loss-error bound per bit width: one analyzed
/// tape, then one noise propagation per entry of `bits` seeding *every*
/// quantizable layer at `Δ(b)/2` simultaneously. This bounds the loss
/// shift of uniformly quantizing the full network — the cheap dominance
/// gate `quant_sweep` holds every sweep point against.
///
/// # Errors
///
/// Same contract as [`static_sensitivity_matrix`].
pub fn certified_noise_bounds(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    bits: &[u8],
) -> Result<Vec<f32>> {
    for &b in bits {
        QuantScheme::symmetric(b)?;
    }
    let prev = hero_nn::norm::set_bn_running_stat_updates(false);
    let mut g = Graph::new();
    let built = net
        .forward(&mut g, images, true)
        .and_then(|(logits, vars)| Ok((g.cross_entropy(logits, labels)?, vars)));
    hero_nn::norm::set_bn_running_stat_updates(prev);
    let (loss, vars) = built?;
    let report = hero_analyze::verify_graph_with(&g, &[loss], &VerifyOptions::default());
    if report.has_errors() {
        g.reset();
        return Err(TensorError::InvalidArgument(format!(
            "static tape verification failed for `{}`:\n{report}",
            net.name()
        )));
    }
    let value = report.value.ok_or_else(|| {
        TensorError::InvalidArgument("analyzer produced no value analysis".into())
    })?;
    let tape = g.trace();
    let recorded = g.value_abs_max();
    let params = net.params();
    let infos = net.param_infos();
    let bounds = bits
        .iter()
        .map(|&b| {
            let seeds: Vec<NoiseSeed> = vars
                .iter()
                .zip(&params)
                .zip(&infos)
                .filter(|(_, info)| info.kind.is_quantizable())
                .map(|((var, param), _)| {
                    NoiseSeed::for_quantized_weight(var.index(), param.norm_linf(), b)
                })
                .collect();
            let rn = relational_noise_pass(&tape, &value.intervals, Some(&recorded), &seeds);
            rn.tightened[loss.index()].abs_max()
        })
        .collect();
    g.reset();
    Ok(bounds)
}

/// One `(layer, bits)` cell of the empirical crosscheck.
#[derive(Debug, Clone, PartialEq)]
pub struct CrosscheckCell {
    /// Layer name.
    pub layer: String,
    /// Bit width probed.
    pub bits: u8,
    /// Certified static bound on the loss perturbation.
    pub certified: f32,
    /// Largest measured `|L(W + δ) − L(W)|` over the fake-quant trial
    /// plus the random in-bin perturbation trials.
    pub empirical: f32,
    /// Whether the measured error escaped the certified bound.
    pub violated: bool,
}

/// Result of [`noise_crosscheck`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrosscheckReport {
    /// Model name.
    pub model: String,
    /// Every probed `(layer, bits)` cell.
    pub cells: Vec<CrosscheckCell>,
    /// Number of cells whose empirical error escaped the bound (must be
    /// zero for a sound analysis).
    pub violations: usize,
    /// Fraction of the statically-predicted top-half most-sensitive
    /// layers that also rank top-half empirically (at [`Self::ref_bits`]).
    /// `1.0` for single-layer networks (ranking is trivial).
    pub overlap: f32,
    /// Spearman rank correlation between the static per-layer impacts and
    /// the empirical loss shifts at [`Self::ref_bits`]; `None` when the
    /// ranking is degenerate (fewer than two layers, or one side
    /// constant — e.g. every static cell clamped at the loss ceiling).
    /// Gates must treat `None` as a failure, never as a pass.
    pub rank_rho: Option<f32>,
    /// Bit width the ranking overlap was computed at (grid midpoint).
    pub ref_bits: u8,
    /// The certified static sensitivity matrix the cells were checked
    /// against (tightened cells in `err`, interval-domain cells in
    /// `err_interval` — the tightness artifact is derived from these).
    pub matrix: SensitivityMatrix,
}

/// Cross-validates the static noise domain against measurement: for every
/// quantizable layer and every grid width, fake-quantizes that layer
/// alone (round-to-nearest, plus `trials` random perturbations with
/// `‖δ‖∞ ≤ Δ/2`) and measures the probe-loss shift. Sound analysis means
/// every measured shift sits inside the certified bound; a useful one
/// means the static sensitivity *ranking* matches the empirical ranking.
/// Each violated cell increments the
/// `noise_crosscheck_violations` counter.
///
/// Parameters are restored before returning.
///
/// # Errors
///
/// Same contract as [`static_sensitivity_matrix`].
pub fn noise_crosscheck(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    bits_grid: &[u8],
    trials: usize,
    seed: u64,
) -> Result<CrosscheckReport> {
    let matrix = static_sensitivity_matrix(net, images, labels, bits_grid)?;
    let base = probe_loss(net, images, labels)?;
    let full = net.params();
    let infos = net.param_infos();
    let quant_idx: Vec<usize> = infos
        .iter()
        .enumerate()
        .filter(|(_, i)| i.kind.is_quantizable())
        .map(|(i, _)| i)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC805_5C8E);
    let mut cells = Vec::with_capacity(quant_idx.len() * bits_grid.len());
    let mut violations = 0usize;
    for (l, &pi) in quant_idx.iter().enumerate() {
        for (k, &b) in bits_grid.iter().enumerate() {
            let certified = matrix.impact(l, b).min(matrix.layers[l].err[k]);
            let delta = matrix.layers[l].delta(b);
            let mut empirical = 0.0f32;
            // Trial 0: the actual round-to-nearest fake quantization.
            let q = quantize_tensor(&full[pi], &QuantScheme::symmetric(b)?)?;
            let mut probe_with = |perturbed: Tensor| -> Result<()> {
                let mut params = full.clone();
                params[pi] = perturbed;
                net.set_params(&params)?;
                let shifted = probe_loss(net, images, labels)?;
                empirical = empirical.max((shifted - base).abs());
                Ok(())
            };
            probe_with(q.values)?;
            // Random in-bin perturbations: any ‖δ‖∞ ≤ Δ/2 is admissible
            // under the certificate, not just the rounding pattern.
            for _ in 0..trials {
                let half = delta / 2.0;
                let data: Vec<f32> = full[pi]
                    .data()
                    .iter()
                    .map(|&w| w + rng.gen_range(-half..=half))
                    .collect();
                probe_with(Tensor::from_vec(data, full[pi].shape().clone())?)?;
            }
            let violated = empirical > certified * (1.0 + DOMINANCE_REL_TOL) + DOMINANCE_ABS_TOL;
            if violated {
                violations += 1;
                hero_obs::counters::NOISE_CROSSCHECK_VIOLATIONS.incr();
            }
            cells.push(CrosscheckCell {
                layer: matrix.layers[l].name.clone(),
                bits: b,
                certified,
                empirical,
                violated,
            });
        }
    }
    net.set_params(&full)?;

    // Ranking overlap at the grid midpoint: do the statically-sensitive
    // layers match the empirically-sensitive ones?
    let ref_k = bits_grid.len() / 2;
    let ref_bits = bits_grid[ref_k];
    let n = quant_idx.len();
    let overlap = if n < 2 {
        1.0
    } else {
        let top = n.div_ceil(2);
        let top_set = |score: &dyn Fn(usize) -> f32| -> Vec<usize> {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                score(b)
                    .partial_cmp(&score(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            order.truncate(top);
            order
        };
        let static_top = top_set(&|l| matrix.impact(l, ref_bits));
        let emp_top = top_set(&|l| {
            cells
                .iter()
                .find(|c| c.layer == matrix.layers[l].name && c.bits == ref_bits)
                .map_or(0.0, |c| c.empirical)
        });
        let hits = static_top.iter().filter(|l| emp_top.contains(l)).count();
        hits as f32 / top as f32
    };
    let static_scores: Vec<f32> = (0..n).map(|l| matrix.impact(l, ref_bits)).collect();
    let emp_scores: Vec<f32> = (0..n)
        .map(|l| {
            cells
                .iter()
                .find(|c| c.layer == matrix.layers[l].name && c.bits == ref_bits)
                .map_or(0.0, |c| c.empirical)
        })
        .collect();
    let rank_rho = hero_hessian::spearman_rank_checked(&static_scores, &emp_scores);

    Ok(CrosscheckReport {
        model: net.name().to_string(),
        cells,
        violations,
        overlap,
        rank_rho,
        ref_bits,
        matrix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_data::{SynthGenerator, SynthSpec};
    use hero_nn::models::{mlp, ModelConfig};

    fn setup() -> (Network, Tensor, Vec<usize>) {
        let spec = SynthSpec {
            classes: 4,
            hw: 4,
            noise_std: 0.2,
            ..SynthSpec::default()
        };
        let (train_set, _) = SynthGenerator::new(spec).train_test(32, 8);
        let cfg = ModelConfig {
            classes: 4,
            in_channels: 3,
            input_hw: 4,
            width: 4,
        };
        let net = mlp(cfg, &[16, 12], &mut StdRng::seed_from_u64(7));
        let images = train_set.images.narrow(0, 16).unwrap();
        (net, images, train_set.labels[..16].to_vec())
    }

    #[test]
    fn noisy_preflight_produces_bounds() {
        let (mut net, images, labels) = setup();
        let cfg = NoiseConfig::uniform(4);
        let (report, dot) = preflight_report_with_noise(
            &mut net,
            &images,
            &labels,
            &VerifyOptions::default(),
            Some(&cfg),
            true,
        )
        .unwrap();
        assert!(!report.has_errors(), "{report}");
        let noise = &report.value.as_ref().unwrap().noise;
        assert!(!noise.is_empty());
        // Bounds are finite and non-vacuous at the loss root.
        let worst = noise.iter().map(|e| e.abs_max()).fold(0.0f32, f32::max);
        assert!(worst.is_finite() && worst > 0.0);
        assert!(dot.unwrap().contains("e\u{2264}"));
    }

    #[test]
    fn per_layer_bits_validate_arity() {
        let (mut net, images, labels) = setup();
        let bad = NoiseConfig::per_layer(vec![4]); // mlp has 3 weights
        assert!(preflight_report_with_noise(
            &mut net,
            &images,
            &labels,
            &VerifyOptions::default(),
            Some(&bad),
            false,
        )
        .is_err());
    }

    #[test]
    fn sensitivity_matrix_is_monotone_and_finite() {
        let (mut net, images, labels) = setup();
        let m = static_sensitivity_matrix(&mut net, &images, &labels, &[2, 4, 8]).unwrap();
        assert_eq!(m.bits, vec![2, 4, 8]);
        assert!(!m.layers.is_empty());
        for l in &m.layers {
            assert!(l.err.iter().all(|e| e.is_finite() && *e > 0.0), "{l:?}");
            // Fewer bits → bigger Δ → weaker (larger) bound.
            assert!(l.err[0] >= l.err[1] && l.err[1] >= l.err[2], "{l:?}");
            assert!(l.grad_bound.is_finite());
        }
    }

    #[test]
    fn crosscheck_has_no_violations_on_fresh_mlp() {
        let (mut net, images, labels) = setup();
        let before = net.params();
        let report = noise_crosscheck(&mut net, &images, &labels, &[2, 4, 8], 2, 11).unwrap();
        assert_eq!(report.violations, 0, "{:?}", report.cells);
        assert!(report
            .cells
            .iter()
            .all(|c| c.certified.is_finite() && c.empirical <= c.certified + 1e-5));
        // Bounds stay non-vacuous: certified within a few orders of
        // magnitude of measured error somewhere on the grid.
        assert!(report.cells.iter().any(|c| c.empirical > 0.0));
        assert_eq!(net.params(), before);
        assert!((0.0..=1.0).contains(&report.overlap));
    }

    #[test]
    fn certified_bounds_dominate_uniform_quantization() {
        let (mut net, images, labels) = setup();
        let bits = [2u8, 4, 8];
        let bounds = certified_noise_bounds(&mut net, &images, &labels, &bits).unwrap();
        let base = probe_loss(&mut net, &images, &labels).unwrap();
        let full = net.params();
        for (&b, &bound) in bits.iter().zip(&bounds) {
            let (qp, _) =
                hero_quant::quantize_params(&net, &QuantScheme::symmetric(b).unwrap()).unwrap();
            net.set_params(&qp).unwrap();
            let shifted = probe_loss(&mut net, &images, &labels).unwrap();
            let emp = (shifted - base).abs();
            assert!(
                emp <= bound * (1.0 + DOMINANCE_REL_TOL) + DOMINANCE_ABS_TOL,
                "{b}-bit: measured {emp} escapes certified {bound}"
            );
            net.set_params(&full).unwrap();
        }
        // Monotone: more bits, tighter certified bound.
        assert!(bounds[0] >= bounds[1] && bounds[1] >= bounds[2]);
    }

    #[test]
    fn grid_validation_rejects_junk() {
        let (mut net, images, labels) = setup();
        assert!(static_sensitivity_matrix(&mut net, &images, &labels, &[]).is_err());
        assert!(static_sensitivity_matrix(&mut net, &images, &labels, &[4, 4]).is_err());
        assert!(static_sensitivity_matrix(&mut net, &images, &labels, &[4, 32]).is_err());
    }
}
