//! Deterministic seeded-loop tests for the quantization invariants the
//! paper's Theorem 2 relies on (formerly a proptest suite; rewritten
//! against the in-tree RNG so the workspace builds offline).

use hero_quant::{quant_error, quantize_tensor, QuantScheme};
use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::Tensor;

fn arb_weights(rng: &mut StdRng) -> Tensor {
    let n = rng.gen_range(1..200usize);
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
    Tensor::from_vec(data, [n]).unwrap()
}

fn arb_bits(rng: &mut StdRng, hi: usize) -> u8 {
    rng.gen_range(2..=hi) as u8
}

/// Theorem 2's premise: min-max linear uniform quantization perturbs every
/// weight by at most half a bin.
#[test]
fn symmetric_linf_error_at_most_half_bin() {
    let mut rng = StdRng::seed_from_u64(0x9A01);
    for _ in 0..32 {
        let w = arb_weights(&mut rng);
        let bits = arb_bits(&mut rng, 10);
        let q = quantize_tensor(&w, &QuantScheme::symmetric(bits).unwrap()).unwrap();
        let err = quant_error(&w, &q.values).unwrap();
        assert!(err.linf <= q.max_bin_width() / 2.0 + 1e-5);
    }
}

#[test]
fn asymmetric_linf_error_at_most_half_bin() {
    let mut rng = StdRng::seed_from_u64(0x9A02);
    for _ in 0..32 {
        let w = arb_weights(&mut rng);
        let bits = arb_bits(&mut rng, 10);
        let q = quantize_tensor(&w, &QuantScheme::asymmetric(bits).unwrap()).unwrap();
        let err = quant_error(&w, &q.values).unwrap();
        assert!(err.linf <= q.max_bin_width() / 2.0 + 1e-5);
    }
}

/// Quantization is idempotent: re-quantizing a quantized tensor under the
/// same scheme is (numerically) a no-op.
#[test]
fn quantization_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x9A03);
    for _ in 0..32 {
        let w = arb_weights(&mut rng);
        let bits = arb_bits(&mut rng, 8);
        let scheme = QuantScheme::symmetric(bits).unwrap();
        let q1 = quantize_tensor(&w, &scheme).unwrap();
        let q2 = quantize_tensor(&q1.values, &scheme).unwrap();
        for (a, b) in q1.values.data().iter().zip(q2.values.data()) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + a.abs()));
        }
    }
}

/// The number of distinct dequantized values never exceeds the scheme's
/// level count.
#[test]
fn level_count_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0x9A04);
    for _ in 0..32 {
        let w = arb_weights(&mut rng);
        let bits = arb_bits(&mut rng, 6);
        let scheme = QuantScheme::symmetric(bits).unwrap();
        let q = quantize_tensor(&w, &scheme).unwrap();
        let mut levels: Vec<f32> = q.values.data().to_vec();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        levels.dedup();
        assert!(levels.len() as u32 <= scheme.levels());
    }
}

/// More precision never increases the MSE.
#[test]
fn mse_is_monotone_in_bits() {
    let mut rng = StdRng::seed_from_u64(0x9A05);
    for _ in 0..32 {
        let w = arb_weights(&mut rng);
        let mut prev = f32::INFINITY;
        for bits in [2u8, 4, 6, 8] {
            let q = quantize_tensor(&w, &QuantScheme::symmetric(bits).unwrap()).unwrap();
            let err = quant_error(&w, &q.values).unwrap();
            assert!(err.mse <= prev + 1e-6);
            prev = err.mse;
        }
    }
}

/// Symmetric quantization is sign-preserving and odd:
/// quantize(-w) == -quantize(w).
#[test]
fn symmetric_quantization_is_odd() {
    let mut rng = StdRng::seed_from_u64(0x9A06);
    for _ in 0..32 {
        let w = arb_weights(&mut rng);
        let bits = arb_bits(&mut rng, 8);
        let scheme = QuantScheme::symmetric(bits).unwrap();
        let q_pos = quantize_tensor(&w, &scheme).unwrap();
        let q_neg = quantize_tensor(&w.neg(), &scheme).unwrap();
        for (a, b) in q_pos.values.data().iter().zip(q_neg.values.data()) {
            assert!((a + b).abs() <= 1e-4 * (1.0 + a.abs()));
        }
    }
}

/// Per-channel ranges are subsets of the tensor range, so every channel's
/// bin width is at most the per-tensor bin width — and the worst-case
/// (half-bin) error bound therefore never degrades. (Pointwise MSE is *not*
/// monotone — a value can sit exactly on the coarse grid — so the bin width
/// is the right invariant.)
#[test]
fn per_channel_bins_never_exceed_per_tensor() {
    let mut rng = StdRng::seed_from_u64(0x9A07);
    for _ in 0..32 {
        let rows = rng.gen_range(1..6usize);
        let cols = rng.gen_range(1..12usize);
        let seed = rng.gen_range(0..500u64);
        let w = Tensor::from_fn([rows, cols], |i| {
            let h = (i[0] * 131 + i[1] * 31) as u64 + seed;
            ((h % 1000) as f32 / 50.0 - 10.0) * (1.0 + i[0] as f32)
        });
        let per_tensor = quantize_tensor(&w, &QuantScheme::symmetric(4).unwrap()).unwrap();
        let per_channel =
            quantize_tensor(&w, &QuantScheme::symmetric(4).unwrap().per_channel()).unwrap();
        let tensor_bin = per_tensor.max_bin_width();
        for &bin in &per_channel.bin_widths {
            assert!(bin <= tensor_bin + 1e-6);
        }
        // And the half-bin error bound holds per channel.
        let e_c = quant_error(&w, &per_channel.values).unwrap();
        assert!(e_c.linf <= per_channel.max_bin_width() / 2.0 + 1e-5);
    }
}
