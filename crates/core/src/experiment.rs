//! Experiment runners reproducing every table and figure of the paper.
//!
//! Each runner returns a plain-data result that the report module renders;
//! the `hero-bench` reproduction binaries are thin wrappers around these
//! functions. Hyper-parameters are the result of the grid search described
//! in EXPERIMENTS.md (the paper's §5.1 grid, re-run on the synthetic
//! substrate).

use crate::config::TrainConfig;
use crate::metrics::TrainRecord;
use crate::trainer::train;
use hero_data::{inject_symmetric_noise, Dataset, Preset};
use hero_landscape::{filter_normalized_direction, scan_2d, SurfaceScan};
use hero_nn::models::{ModelConfig, ModelKind};
use hero_nn::{evaluate_accuracy, Network};
use hero_optim::Method;
use hero_quant::{quantize_params, QuantScheme};
use hero_tensor::rng::StdRng;
use hero_tensor::{Result, TensorError};

/// The method variants evaluated across the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Plain SGD.
    Sgd,
    /// GRAD-L1 baseline.
    GradL1,
    /// First-order-only (SAM) ablation.
    FirstOrder,
    /// HERO.
    Hero,
}

impl MethodKind {
    /// The default tuned hyper-parameters (the ResNet/C10 cell). Prefer
    /// [`MethodKind::tuned_for`] inside experiments.
    pub fn tuned(self) -> Method {
        self.tuned_for(Preset::C10, ModelKind::Resnet)
    }

    /// The tuned hyper-parameters for one (dataset, model) cell.
    ///
    /// The paper grid-searches γ per experiment (§5.1) and uses different
    /// h per dataset; the same was necessary here — the perturbation scale
    /// that works for the ResNet stand-in over-perturbs the deeper
    /// MobileNet/VGG stand-ins and the 100-class task. Values recorded in
    /// EXPERIMENTS.md.
    pub fn tuned_for(self, preset: Preset, model: ModelKind) -> Method {
        // The ResNet stand-in tolerates the strongest perturbation except
        // on the 100-class task; the deeper BN-heavy families need h an
        // order of magnitude below the paper's (our weights are much
        // smaller, and Eq. 15's z scales with them).
        let strong = matches!(model, ModelKind::Resnet) && !matches!(preset, Preset::C100);
        match self {
            MethodKind::Sgd => Method::Sgd,
            MethodKind::GradL1 => Method::GradL1 { lambda: 1e-4 },
            MethodKind::FirstOrder => {
                if strong {
                    Method::FirstOrderOnly { h: 0.2 }
                } else {
                    Method::FirstOrderOnly { h: 0.05 }
                }
            }
            MethodKind::Hero => {
                if strong {
                    Method::Hero {
                        h: 0.2,
                        gamma: 0.01,
                    }
                } else {
                    Method::Hero {
                        h: 0.1,
                        gamma: 0.005,
                    }
                }
            }
        }
    }

    /// Display name matching the paper's tables.
    pub fn paper_name(self) -> &'static str {
        self.tuned().name()
    }
}

/// Global scale knob for the experiment suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Dataset size multiplier.
    pub data: f32,
    /// Epochs for the 8×8 presets (C10/C100).
    pub epochs_small: usize,
    /// Epochs for the 16×16 preset (IN).
    pub epochs_large: usize,
}

impl Scale {
    /// The full reproduction scale used for EXPERIMENTS.md.
    pub fn full() -> Self {
        Scale {
            data: 1.0,
            epochs_small: 60,
            epochs_large: 25,
        }
    }

    /// A smoke-test scale for CI-speed runs.
    pub fn fast() -> Self {
        Scale {
            data: 0.25,
            epochs_small: 6,
            epochs_large: 2,
        }
    }

    /// Epoch budget for a preset.
    pub fn epochs(&self, preset: Preset) -> usize {
        match preset {
            Preset::C10 | Preset::C100 => self.epochs_small,
            Preset::In50 => self.epochs_large,
        }
    }
}

/// Builds the model configuration for a (preset, model) pair.
pub fn model_config(preset: Preset) -> ModelConfig {
    ModelConfig {
        classes: preset.classes(),
        in_channels: 3,
        input_hw: preset.input_hw(),
        width: 8,
    }
}

/// A trained model together with its training record.
#[derive(Debug)]
pub struct TrainedModel {
    /// The network with final weights installed.
    pub net: Network,
    /// Per-epoch record.
    pub record: TrainRecord,
    /// Which method trained it.
    pub method: MethodKind,
}

/// Trains one (preset, model, method) cell of the experiment matrix.
///
/// `probe_every` enables the Fig. 2 ‖Hz‖ probe at that epoch interval
/// (0 = off). The model seed is fixed per (preset, model) so methods start
/// from identical initializations, as in the paper.
///
/// # Errors
///
/// Propagates training errors.
pub fn train_cell(
    preset: Preset,
    model: ModelKind,
    method: MethodKind,
    scale: Scale,
    probe_every: usize,
) -> Result<TrainedModel> {
    let (train_set, test_set) = preset.load(scale.data);
    train_on(
        &train_set,
        &test_set,
        preset,
        model,
        method,
        scale,
        probe_every,
    )
}

/// Like [`train_cell`] but on caller-supplied datasets (used by the
/// noisy-label experiment).
///
/// # Errors
///
/// Propagates training errors.
pub fn train_on(
    train_set: &Dataset,
    test_set: &Dataset,
    preset: Preset,
    model: ModelKind,
    method: MethodKind,
    scale: Scale,
    probe_every: usize,
) -> Result<TrainedModel> {
    let mut rng = StdRng::seed_from_u64(model_seed(preset, model));
    let mut net = model.build(model_config(preset), &mut rng);
    let config = TrainConfig::new(method.tuned_for(preset, model), scale.epochs(preset))
        .with_probe_every(probe_every)
        .with_seed(model_seed(preset, model) ^ 0x7EA7);
    let record = train(&mut net, train_set, test_set, &config)?;
    Ok(TrainedModel {
        net,
        record,
        method,
    })
}

/// Like [`train_cell`] but backed by a directory of model artifacts: a
/// cache hit reconstructs the trained model (weights, batch-norm state
/// and full training record, all bitwise equal to the fresh run) from
/// disk instead of retraining; a miss trains and saves the artifact for
/// the next invocation.
///
/// # Errors
///
/// Propagates training, artifact-decode and I/O errors. A corrupt or
/// mismatched cache file is an error rather than a silent retrain, so a
/// stale cache never masquerades as a reproduction.
pub fn train_cell_cached(
    preset: Preset,
    model: ModelKind,
    method: MethodKind,
    scale: Scale,
    probe_every: usize,
    cache_dir: &std::path::Path,
) -> Result<TrainedModel> {
    let slug = format!(
        "{}_{}_{}",
        preset.paper_name(),
        model.paper_name(),
        method.paper_name()
    )
    .to_lowercase()
    .replace(['/', ' ', '-'], "_");
    let path = cache_dir.join(format!("{slug}.ha"));
    if path.is_file() {
        let art = crate::artifact_io::load_artifact(&path)?;
        let net = crate::artifact_io::network_from_artifact(&art)?;
        let record = crate::artifact_io::record_from_artifact(&art)?;
        hero_obs::Event::new("artifact_cache_hit")
            .str("path", &path.to_string_lossy())
            .human(format!("loaded trained model from {}", path.display()))
            .emit();
        return Ok(TrainedModel {
            net,
            record,
            method,
        });
    }
    let (train_set, test_set) = preset.load(scale.data);
    let mut rng = StdRng::seed_from_u64(model_seed(preset, model));
    let mut net = model.build(model_config(preset), &mut rng);
    let config = TrainConfig::new(method.tuned_for(preset, model), scale.epochs(preset))
        .with_probe_every(probe_every)
        .with_seed(model_seed(preset, model) ^ 0x7EA7);
    let meta = crate::artifact_io::RunMeta {
        model: crate::artifact_io::ModelSpec::Kind(model),
        model_cfg: model_config(preset),
        config,
        git_rev: "cache".to_string(),
        preflight_hash: None,
    };
    let (record, art) =
        crate::artifact_io::train_to_artifact(&mut net, &train_set, &test_set, &meta, 0, None)?;
    std::fs::create_dir_all(cache_dir).map_err(|e| {
        TensorError::InvalidArgument(format!("create {}: {e}", cache_dir.display()))
    })?;
    crate::artifact_io::save_artifact(&art, &path)?;
    Ok(TrainedModel {
        net,
        record,
        method,
    })
}

fn model_seed(preset: Preset, model: ModelKind) -> u64 {
    let p = match preset {
        Preset::C10 => 1,
        Preset::C100 => 2,
        Preset::In50 => 3,
    };
    let m = match model {
        ModelKind::Resnet => 10,
        ModelKind::Mobilenet => 20,
        ModelKind::Vgg => 30,
    };
    p * 1000 + m
}

// ---------------------------------------------------------------------------
// Table 1: clean test accuracy
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Test accuracy per method, ordered as `methods`.
    pub accs: Vec<f32>,
}

/// Table 1 result: the method columns plus one row per (dataset, model).
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Column methods.
    pub methods: Vec<MethodKind>,
    /// Rows.
    pub rows: Vec<Table1Row>,
}

/// The (dataset, model) matrix of Table 1 / Fig. 1.
pub fn table1_matrix() -> Vec<(Preset, ModelKind)> {
    vec![
        (Preset::C10, ModelKind::Resnet),
        (Preset::C10, ModelKind::Mobilenet),
        (Preset::C10, ModelKind::Vgg),
        (Preset::C100, ModelKind::Resnet),
        (Preset::C100, ModelKind::Mobilenet),
        (Preset::C100, ModelKind::Vgg),
        (Preset::In50, ModelKind::Resnet),
    ]
}

/// Runs Table 1 over the given matrix, returning the table and the trained
/// models (reused by Fig. 1, which quantizes exactly these checkpoints).
///
/// # Errors
///
/// Propagates training errors.
pub fn run_table1(
    matrix: &[(Preset, ModelKind)],
    scale: Scale,
) -> Result<(Table1, Vec<Vec<TrainedModel>>)> {
    let methods = [MethodKind::Hero, MethodKind::GradL1, MethodKind::Sgd];
    let mut rows = Vec::new();
    let mut all_models = Vec::new();
    for &(preset, model) in matrix {
        let mut accs = Vec::new();
        let mut cell_models = Vec::new();
        for &method in &methods {
            let trained = train_cell(preset, model, method, scale, 0)?;
            accs.push(trained.record.final_test_acc);
            cell_models.push(trained);
        }
        rows.push(Table1Row {
            dataset: preset.paper_name(),
            model: model.paper_name(),
            accs,
        });
        all_models.push(cell_models);
    }
    Ok((
        Table1 {
            methods: methods.to_vec(),
            rows,
        },
        all_models,
    ))
}

/// Like [`run_table1`] but with every cell backed by an artifact cache
/// directory ([`train_cell_cached`]): a fully warm cache reproduces the
/// table (and the Fig. 1 sweeps over exactly these checkpoints) without
/// a single training step.
///
/// # Errors
///
/// Propagates training, artifact and I/O errors.
pub fn run_table1_cached(
    matrix: &[(Preset, ModelKind)],
    scale: Scale,
    cache_dir: &std::path::Path,
) -> Result<(Table1, Vec<Vec<TrainedModel>>)> {
    let methods = [MethodKind::Hero, MethodKind::GradL1, MethodKind::Sgd];
    let mut rows = Vec::new();
    let mut all_models = Vec::new();
    for &(preset, model) in matrix {
        let mut accs = Vec::new();
        let mut cell_models = Vec::new();
        for &method in &methods {
            let trained = train_cell_cached(preset, model, method, scale, 0, cache_dir)?;
            accs.push(trained.record.final_test_acc);
            cell_models.push(trained);
        }
        rows.push(Table1Row {
            dataset: preset.paper_name(),
            model: model.paper_name(),
            accs,
        });
        all_models.push(cell_models);
    }
    Ok((
        Table1 {
            methods: methods.to_vec(),
            rows,
        },
        all_models,
    ))
}

// ---------------------------------------------------------------------------
// Table 2: noisy-label training
// ---------------------------------------------------------------------------

/// Table 2 result for one model: test accuracy per (method, noise ratio).
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The model evaluated.
    pub model: &'static str,
    /// Noise ratios (columns).
    pub ratios: Vec<f32>,
    /// Methods (rows).
    pub methods: Vec<MethodKind>,
    /// `accs[m][r]` = accuracy of method `m` at ratio `r`.
    pub accs: Vec<Vec<f32>>,
}

/// Runs the §5.2 noisy-label experiment for one model on the C10 preset.
///
/// This experiment runs in the *memorization regime*: samples carry a
/// private identifying texture (like the idiosyncratic detail of real
/// photographs — without it, near-duplicate synthetic samples make label
/// memorization impossible and no method can differ), and training uses
/// small batches over an extended epoch budget so the step count is large
/// enough for sharp minimizers to actually memorize wrong labels. See
/// EXPERIMENTS.md for the adaptation note.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_table2(model: ModelKind, ratios: &[f32], scale: Scale) -> Result<Table2> {
    let methods = [MethodKind::Hero, MethodKind::GradL1, MethodKind::Sgd];
    let preset = Preset::C10;
    let spec = hero_data::SynthSpec {
        sample_texture: 0.6,
        ..preset.spec()
    };
    let generator = hero_data::SynthGenerator::new(spec);
    let (train_n, test_n) = preset.sizes(scale.data);
    let (clean_train, test_set) = generator.train_test(train_n, test_n);
    // Extended small-batch budget (see doc comment).
    let epochs = (scale.epochs_small * 2).max(1);
    let mut accs = vec![Vec::new(); methods.len()];
    for &ratio in ratios {
        let mut noisy = clean_train.clone();
        inject_symmetric_noise(&mut noisy, ratio, 0xBAD_1ABE1);
        for (mi, &method) in methods.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(model_seed(preset, model));
            let mut net = model.build(model_config(preset), &mut rng);
            let config = TrainConfig::new(method.tuned_for(preset, model), epochs)
                .with_batch_size(8)
                .with_seed(model_seed(preset, model) ^ 0x7EA7);
            let record = train(&mut net, &noisy, &test_set, &config)?;
            accs[mi].push(record.final_test_acc);
        }
    }
    Ok(Table2 {
        model: model.paper_name(),
        ratios: ratios.to_vec(),
        methods: methods.to_vec(),
        accs,
    })
}

// ---------------------------------------------------------------------------
// Fig. 1: post-training quantization sweeps
// ---------------------------------------------------------------------------

/// One quantization curve: accuracy at each bit width for one method.
#[derive(Debug, Clone)]
pub struct QuantCurve {
    /// Method that trained the checkpoint.
    pub method: MethodKind,
    /// Full-precision accuracy.
    pub full_acc: f32,
    /// `(bits, accuracy)` points.
    pub points: Vec<(u8, f32)>,
}

/// Sweeps post-training quantization over `bits` for a trained model,
/// restoring full-precision weights afterwards.
///
/// # Errors
///
/// Propagates quantization/evaluation errors.
pub fn quant_sweep(
    trained: &mut TrainedModel,
    test_set: &Dataset,
    bits: &[u8],
) -> Result<QuantCurve> {
    // The sweep evaluates many quantized parameter sets on the same tape;
    // statically verify that tape once up front — including the clip-risk
    // lint at exactly the bit widths about to be swept — so a malformed
    // model fails with a report rather than skewing every point of the
    // curve.
    let probe = test_set.len().min(64);
    let mut gate = None;
    if probe > 0 {
        let images = test_set.images.narrow(0, probe)?;
        let vopts = hero_analyze::VerifyOptions {
            quant_bits: bits.to_vec(),
            ..hero_analyze::VerifyOptions::default()
        };
        crate::trainer::verify_network_tape_with(
            &mut trained.net,
            &images,
            &test_set.labels[..probe],
            &vopts,
        )?;
        // Certified whole-network noise bounds at the swept widths plus the
        // unquantized probe loss: every sweep point is held against its
        // static certificate below (the soundness gate of DESIGN.md §14).
        let bounds = crate::preflight::certified_noise_bounds(
            &mut trained.net,
            &images,
            &test_set.labels[..probe],
            bits,
        )?;
        let base =
            crate::preflight::probe_loss(&mut trained.net, &images, &test_set.labels[..probe])?;
        gate = Some((images, bounds, base));
    }
    let _sweep = hero_obs::span("quant_sweep");
    let full_params = trained.net.params();
    let mut points = Vec::with_capacity(bits.len());
    for (i, &b) in bits.iter().enumerate() {
        let (qp, _) = quantize_params(&trained.net, &QuantScheme::symmetric(b)?)?;
        trained.net.set_params(&qp)?;
        if let Some((images, bounds, base)) = &gate {
            let shifted =
                crate::preflight::probe_loss(&mut trained.net, images, &test_set.labels[..probe])?;
            let measured = (shifted - base).abs();
            let certified = bounds[i];
            if hero_obs::run_active() {
                hero_obs::Event::new("quant_noise_gate")
                    .str("method", trained.method.paper_name())
                    .u64("bits", u64::from(b))
                    .f64("certified", f64::from(certified))
                    .f64("measured", f64::from(measured))
                    .emit();
            }
            if measured > certified * 1.0001 + 1e-5 {
                hero_obs::counters::NOISE_CROSSCHECK_VIOLATIONS.incr();
                trained.net.set_params(&full_params)?;
                return Err(TensorError::InvalidArgument(format!(
                    "noise-domain soundness violation at {b} bits: measured probe-loss \
                     shift {measured:.6e} escapes the certified bound {certified:.6e}"
                )));
            }
        }
        let acc = evaluate_accuracy(&mut trained.net, &test_set.images, &test_set.labels, 64)?;
        if hero_obs::run_active() {
            hero_obs::Event::new("quant")
                .str("method", trained.method.paper_name())
                .u64("bits", u64::from(b))
                .f64("accuracy", f64::from(acc))
                .emit();
        }
        points.push((b, acc));
        trained.net.set_params(&full_params)?;
    }
    Ok(QuantCurve {
        method: trained.method,
        full_acc: trained.record.final_test_acc,
        points,
    })
}

/// The paper's Fig. 1 bit-width grid adapted to the substrate.
pub fn fig1_bits() -> Vec<u8> {
    vec![3, 4, 5, 6, 8]
}

// ---------------------------------------------------------------------------
// Table 3: ablation (HERO vs first-order-only vs SGD)
// ---------------------------------------------------------------------------

/// Table 3 result: quantized accuracy per method at each precision.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Bit widths (columns, plus full precision).
    pub bits: Vec<u8>,
    /// Methods (rows).
    pub methods: Vec<MethodKind>,
    /// `accs[m]` = accuracies at each bit width then full precision last.
    pub accs: Vec<Vec<f32>>,
}

/// Runs the Table 3 ablation: MobileNet on C10 trained with HERO,
/// first-order-only, and SGD, evaluated at several precisions.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_table3(scale: Scale) -> Result<Table3> {
    let methods = [MethodKind::Hero, MethodKind::FirstOrder, MethodKind::Sgd];
    let bits = vec![4u8, 6, 8];
    let preset = Preset::C10;
    let (_, test_set) = preset.load(scale.data);
    let mut accs = Vec::new();
    for &method in &methods {
        let mut trained = train_cell(preset, ModelKind::Mobilenet, method, scale, 0)?;
        let curve = quant_sweep(&mut trained, &test_set, &bits)?;
        let mut row: Vec<f32> = curve.points.iter().map(|&(_, a)| a).collect();
        row.push(curve.full_acc);
        accs.push(row);
    }
    Ok(Table3 {
        bits,
        methods: methods.to_vec(),
        accs,
    })
}

// ---------------------------------------------------------------------------
// Fig. 2: Hessian norm and generalization gap across training
// ---------------------------------------------------------------------------

/// Fig. 2 result: the ‖Hz‖ series and late-training generalization gap per
/// method.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Method per entry.
    pub methods: Vec<MethodKind>,
    /// ‖Hz‖ series per method: `(epoch, value)`.
    pub hessian_series: Vec<Vec<(usize, f32)>>,
    /// Mean generalization gap over the final quarter of training.
    pub late_gaps: Vec<f32>,
}

/// Runs Fig. 2: ResNet on C10 trained with each method under periodic
/// curvature probes.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_fig2(scale: Scale) -> Result<Fig2> {
    let methods = [MethodKind::Hero, MethodKind::GradL1, MethodKind::Sgd];
    let probe_every = (scale.epochs_small / 10).max(1);
    let mut series = Vec::new();
    let mut gaps = Vec::new();
    for &method in &methods {
        let trained = train_cell(Preset::C10, ModelKind::Resnet, method, scale, probe_every)?;
        series.push(trained.record.hessian_series());
        gaps.push(
            trained
                .record
                .mean_late_gap((scale.epochs_small / 4).max(1)),
        );
    }
    Ok(Fig2 {
        methods: methods.to_vec(),
        hessian_series: series,
        late_gaps: gaps,
    })
}

// ---------------------------------------------------------------------------
// Fig. 3: loss contours
// ---------------------------------------------------------------------------

/// Fig. 3 result: the 2-D loss scans for HERO- and SGD-trained weights
/// along the same (per-model filter-normalized) random directions.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Scan of the HERO-trained model.
    pub hero: SurfaceScan,
    /// Scan of the SGD-trained model.
    pub sgd: SurfaceScan,
    /// Loss-increase threshold used for the flatness statistics.
    pub threshold: f32,
}

/// Scans the loss surface around a trained model's weights along two
/// filter-normalized random directions, evaluating the training loss on a
/// fixed subsample (as the visualization tool of Li et al. does).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn landscape_scan(
    trained: &mut TrainedModel,
    train_set: &Dataset,
    radius: f32,
    steps: usize,
    seed: u64,
) -> Result<SurfaceScan> {
    let n = train_set.len().min(128);
    let images = train_set.images.narrow(0, n)?;
    let labels = train_set.labels[..n].to_vec();
    let params = trained.net.params();
    let mut rng = StdRng::seed_from_u64(seed);
    let d1 = filter_normalized_direction(&params, &mut rng)?;
    let d2 = filter_normalized_direction(&params, &mut rng)?;
    let net = &mut trained.net;
    let mut oracle = |ps: &[hero_tensor::Tensor]| -> Result<f32> {
        net.set_params(ps)?;
        hero_nn::eval_loss(net, &images, &labels)
    };
    let scan = scan_2d(&mut oracle, &params, &d1, &d2, radius, steps)?;
    trained.net.set_params(&params)?;
    Ok(scan)
}

/// Runs Fig. 3: ResNet20-stand-in on C10 trained with HERO and SGD, scanned
/// at the same scale.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_fig3(scale: Scale, radius: f32, steps: usize) -> Result<Fig3> {
    let (train_set, _) = Preset::C10.load(scale.data);
    let mut hero = train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Hero, scale, 0)?;
    let mut sgd = train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Sgd, scale, 0)?;
    let hero_scan = landscape_scan(&mut hero, &train_set, radius, steps, 0xF163)?;
    let sgd_scan = landscape_scan(&mut sgd, &train_set, radius, steps, 0xF163)?;
    Ok(Fig3 {
        hero: hero_scan,
        sgd: sgd_scan,
        threshold: 0.1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_methods_have_expected_shapes() {
        assert_eq!(MethodKind::Sgd.tuned(), Method::Sgd);
        assert!(matches!(MethodKind::Hero.tuned(), Method::Hero { .. }));
        assert!(matches!(MethodKind::GradL1.tuned(), Method::GradL1 { .. }));
        assert_eq!(MethodKind::Hero.paper_name(), "HERO");
    }

    #[test]
    fn scale_epochs_vary_by_preset() {
        let s = Scale::full();
        assert_eq!(s.epochs(Preset::C10), 60);
        assert_eq!(s.epochs(Preset::In50), 25);
        assert!(Scale::fast().epochs_small < s.epochs_small);
    }

    #[test]
    fn matrix_covers_paper_rows() {
        let m = table1_matrix();
        assert_eq!(m.len(), 7);
        assert_eq!(m.iter().filter(|(p, _)| *p == Preset::C10).count(), 3);
        assert_eq!(m.iter().filter(|(p, _)| *p == Preset::In50).count(), 1);
    }

    #[test]
    fn train_cell_and_quant_sweep_smoke() {
        let scale = Scale {
            data: 0.12,
            epochs_small: 2,
            epochs_large: 1,
        };
        let mut trained =
            train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Sgd, scale, 0).unwrap();
        assert!(trained.record.final_test_acc.is_finite());
        let (_, test_set) = Preset::C10.load(scale.data);
        let before = trained.net.params();
        let curve = quant_sweep(&mut trained, &test_set, &[4, 8]).unwrap();
        assert_eq!(curve.points.len(), 2);
        // Weights restored after the sweep.
        assert_eq!(trained.net.params(), before);
    }

    #[test]
    fn model_seeds_are_unique_per_cell() {
        let mut seen = std::collections::HashSet::new();
        for (p, m) in table1_matrix() {
            assert!(
                seen.insert(model_seed(p, m)),
                "duplicate seed for {p:?}/{m:?}"
            );
        }
    }
}
