//! Procedural class-texture image generator.
//!
//! Each class is defined by a smooth random texture prototype (a sum of
//! random 2-D sinusoids per channel). A sample is its class prototype with
//! random amplitude, a small spatial shift and additive Gaussian noise.
//! The construction gives a classification task with the properties the
//! HERO experiments need at CPU scale: class structure a small CNN can
//! learn, per-sample noise that a large model can overfit, and enough
//! difficulty that flat-vs-sharp minima differences show up in test
//! accuracy (see DESIGN.md §1 for the substitution rationale).

use hero_tensor::rng::Rng;
use hero_tensor::rng::StdRng;
use hero_tensor::Tensor;

/// Configuration of a synthetic vision dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthSpec {
    /// Number of classes.
    pub classes: usize,
    /// Channels per image (3 everywhere, like the paper's RGB inputs).
    pub channels: usize,
    /// Spatial side length.
    pub hw: usize,
    /// Standard deviation of per-pixel Gaussian noise.
    pub noise_std: f32,
    /// Maximum circular shift (pixels) applied per sample.
    pub max_shift: usize,
    /// Number of prototype "super-classes"; classes within a super-class
    /// share most of their texture (used by the C100 preset to mimic
    /// CIFAR-100's fine/coarse structure). `0` means every class is
    /// independent.
    pub superclasses: usize,
    /// Amplitude of each sample's private smooth texture. Like the
    /// idiosyncratic detail of a real photograph, it makes individual
    /// samples identifiable — which is what lets a high-capacity model
    /// memorize (noisy) labels and what separates flat from sharp
    /// minimizers. `0` disables it.
    pub sample_texture: f32,
    /// Base RNG seed; prototypes and samples derive from it.
    pub seed: u64,
}

impl Default for SynthSpec {
    /// 10 independent classes of 3×8×8 textures with moderate noise.
    fn default() -> Self {
        SynthSpec {
            classes: 10,
            channels: 3,
            hw: 8,
            noise_std: 0.45,
            max_shift: 1,
            superclasses: 0,
            sample_texture: 0.0,
            seed: 0x5EED,
        }
    }
}

/// A generated dataset: images in NCHW layout plus integer labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, shape `(n, channels, hw, hw)`.
    pub images: Tensor,
    /// Class label per image.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The `(channels, hw, hw)` shape of one image.
    pub fn image_dims(&self) -> (usize, usize, usize) {
        let d = self.images.dims();
        (d[1], d[2], d[3])
    }
}

/// Generator holding the class prototypes for one [`SynthSpec`].
#[derive(Debug, Clone)]
pub struct SynthGenerator {
    spec: SynthSpec,
    /// Flattened prototype per class, each of `channels*hw*hw` values.
    prototypes: Vec<Vec<f32>>,
}

impl SynthGenerator {
    /// Builds the class prototypes for `spec` (deterministic in the seed).
    pub fn new(spec: SynthSpec) -> Self {
        let mut proto_rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9));
        let mut prototypes = Vec::with_capacity(spec.classes);
        if spec.superclasses == 0 {
            for _ in 0..spec.classes {
                prototypes.push(texture(&spec, &mut proto_rng, 1.0));
            }
        } else {
            // Fine classes = super prototype + a smaller private texture.
            let supers: Vec<Vec<f32>> = (0..spec.superclasses)
                .map(|_| texture(&spec, &mut proto_rng, 1.0))
                .collect();
            for class in 0..spec.classes {
                let s = &supers[class % spec.superclasses];
                let fine = texture(&spec, &mut proto_rng, 0.6);
                prototypes.push(s.iter().zip(&fine).map(|(a, b)| a + b).collect());
            }
        }
        SynthGenerator { spec, prototypes }
    }

    /// The generator's spec.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// Generates `n` samples with balanced labels. `split_seed`
    /// distinguishes train/test draws (different seeds give disjoint noise
    /// and shifts over the same prototypes — the train/test relationship of
    /// a real dataset).
    pub fn generate(&self, n: usize, split_seed: u64) -> Dataset {
        let spec = &self.spec;
        let mut rng =
            StdRng::seed_from_u64(spec.seed.wrapping_add(split_seed.wrapping_mul(0xC2B2_AE35)));
        let pix = spec.channels * spec.hw * spec.hw;
        let mut data = Vec::with_capacity(n * pix);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.classes;
            labels.push(class);
            let amp: f32 = rng.gen_range(0.8..1.2);
            let dx = rng.gen_range(0..=2 * spec.max_shift) as isize - spec.max_shift as isize;
            let dy = rng.gen_range(0..=2 * spec.max_shift) as isize - spec.max_shift as isize;
            let proto = &self.prototypes[class];
            let private = if spec.sample_texture > 0.0 {
                Some(texture(spec, &mut rng, spec.sample_texture))
            } else {
                None
            };
            for c in 0..spec.channels {
                for y in 0..spec.hw {
                    for x in 0..spec.hw {
                        let sy = (y as isize + dy).rem_euclid(spec.hw as isize) as usize;
                        let sx = (x as isize + dx).rem_euclid(spec.hw as isize) as usize;
                        let off = (c * spec.hw + sy) * spec.hw + sx;
                        let base = proto[off];
                        let idio = private.as_ref().map_or(0.0, |p| p[off]);
                        let noise = spec.noise_std * standard_normal(&mut rng);
                        data.push(amp * base + idio + noise);
                    }
                }
            }
        }
        let images = Tensor::from_vec(data, [n, spec.channels, spec.hw, spec.hw])
            .expect("volume matches by construction");
        Dataset {
            images,
            labels,
            classes: spec.classes,
        }
    }

    /// Convenience: a `(train, test)` pair with standard split seeds.
    pub fn train_test(&self, train_n: usize, test_n: usize) -> (Dataset, Dataset) {
        (self.generate(train_n, 1), self.generate(test_n, 2))
    }
}

/// A smooth random texture: each channel is a sum of three random 2-D
/// sinusoids with amplitudes scaled by `strength`.
fn texture(spec: &SynthSpec, rng: &mut StdRng, strength: f32) -> Vec<f32> {
    let hw = spec.hw as f32;
    let mut out = vec![0.0f32; spec.channels * spec.hw * spec.hw];
    for c in 0..spec.channels {
        for _ in 0..3 {
            let fx: f32 = rng.gen_range(0.5..2.5) / hw;
            let fy: f32 = rng.gen_range(0.5..2.5) / hw;
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let amp: f32 = strength * rng.gen_range(0.3..0.7);
            for y in 0..spec.hw {
                for x in 0..spec.hw {
                    let v = amp
                        * (std::f32::consts::TAU * (fx * x as f32 + fy * y as f32) + phase).sin();
                    out[(c * spec.hw + y) * spec.hw + x] += v;
                }
            }
        }
    }
    out
}

fn standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let g = SynthGenerator::new(SynthSpec::default());
        let a = g.generate(20, 1);
        let b = g.generate(20, 1);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_split_seeds_differ() {
        let g = SynthGenerator::new(SynthSpec::default());
        let (train, test) = g.train_test(20, 20);
        assert_ne!(train.images, test.images);
        assert_eq!(train.labels, test.labels); // balanced label pattern
    }

    #[test]
    fn labels_are_balanced() {
        let g = SynthGenerator::new(SynthSpec::default());
        let d = g.generate(100, 1);
        for class in 0..10 {
            assert_eq!(d.labels.iter().filter(|&&l| l == class).count(), 10);
        }
        assert_eq!(d.len(), 100);
        assert!(!d.is_empty());
        assert_eq!(d.image_dims(), (3, 8, 8));
    }

    #[test]
    fn images_are_finite_and_scaled() {
        let g = SynthGenerator::new(SynthSpec::default());
        let d = g.generate(50, 3);
        assert!(d.images.is_finite());
        assert!(d.images.norm_linf() < 10.0);
        assert!(d.images.norm_l2() > 0.0);
    }

    #[test]
    fn same_class_samples_are_more_similar_than_cross_class() {
        // Class structure must exist for a classifier to learn anything.
        let spec = SynthSpec {
            noise_std: 0.1,
            seed: 3,
            ..SynthSpec::default()
        };
        let g = SynthGenerator::new(spec);
        let d = g.generate(40, 1);
        let img = |i: usize| d.images.select(0, i).unwrap();
        // Samples i and i+10 share a class; i and i+1 do not.
        let mut same = 0.0;
        let mut cross = 0.0;
        for i in 0..10 {
            same += img(i).sub(&img(i + 10)).unwrap().norm_l2();
            cross += img(i).sub(&img((i + 1) % 10 + 10)).unwrap().norm_l2();
        }
        assert!(
            same < cross,
            "within-class distance {same} should be below cross-class {cross}"
        );
    }

    #[test]
    fn superclass_structure_correlates_fine_classes() {
        let spec = SynthSpec {
            classes: 10,
            superclasses: 2,
            noise_std: 0.0,
            max_shift: 0,
            ..SynthSpec::default()
        };
        let g = SynthGenerator::new(spec);
        let d = g.generate(10, 1);
        let img = |i: usize| d.images.select(0, i).unwrap();
        // Classes 0 and 2 share superclass 0; classes 0 and 1 do not.
        let same_super = img(0).sub(&img(2)).unwrap().norm_l2();
        let cross_super = img(0).sub(&img(1)).unwrap().norm_l2();
        assert!(same_super < cross_super);
    }

    #[test]
    fn noise_knob_controls_sample_spread() {
        let quiet = SynthGenerator::new(SynthSpec {
            noise_std: 0.01,
            ..SynthSpec::default()
        });
        let loud = SynthGenerator::new(SynthSpec {
            noise_std: 1.0,
            ..SynthSpec::default()
        });
        // Distance between two samples of the same class, one per noise level.
        let dq = quiet.generate(20, 1);
        let dl = loud.generate(20, 1);
        let spread = |d: &Dataset| {
            d.images
                .select(0, 0)
                .unwrap()
                .sub(&d.images.select(0, 10).unwrap())
                .unwrap()
                .norm_l2()
        };
        assert!(spread(&dl) > spread(&dq));
    }
}
