//! # hero-core
//!
//! The top-level API of the HERO (DAC 2022) reproduction: the training
//! loop ([`train`]), experiment runners for every table and figure of the
//! paper ([`experiment`]), and plain-text report rendering ([`report`]).
//!
//! The crate ties together the substrates built for this reproduction:
//! `hero-tensor` (dense tensors), `hero-autodiff` (reverse mode),
//! `hero-nn` (layers and the three scaled-down model families),
//! `hero-optim` (SGD / SAM / GRAD-L1 / HERO), `hero-quant` (post-training
//! quantization), `hero-data` (synthetic benchmark presets),
//! `hero-hessian` (curvature probes) and `hero-landscape` (loss contours).
//!
//! # Examples
//!
//! Train the ResNet20 stand-in with HERO on the CIFAR-10 preset at smoke
//! scale and quantize it to 4 bits:
//!
//! ```no_run
//! use hero_core::experiment::{quant_sweep, train_cell, MethodKind, Scale};
//! use hero_data::Preset;
//! use hero_nn::models::ModelKind;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let scale = Scale::fast();
//! let mut trained =
//!     train_cell(Preset::C10, ModelKind::Resnet, MethodKind::Hero, scale, 0)?;
//! let (_, test) = Preset::C10.load(scale.data);
//! let curve = quant_sweep(&mut trained, &test, &[4, 8])?;
//! println!("4-bit accuracy: {:.3}", curve.points[0].1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod artifact_io;
pub mod config;
pub mod experiment;
pub mod metrics;
pub mod preflight;
pub mod report;
pub mod spectrum;
pub mod trainer;

pub use artifact_io::{
    attach_quant, build_artifact, golden_recipe, load_artifact, network_from_artifact,
    preflight_hash, record_from_artifact, resume_from_artifact, run_meta_from_artifact,
    save_artifact, train_to_artifact, ModelSpec, RunMeta,
};
pub use config::TrainConfig;
pub use metrics::{EpochMetrics, TrainRecord};
pub use preflight::{
    certified_noise_bounds, noise_crosscheck, preflight_report_with_noise, probe_loss,
    static_sensitivity_matrix, CrosscheckCell, CrosscheckReport, NoiseBits, NoiseConfig,
};
pub use spectrum::{probe_spectrum, LayerTrace, SpectrumOptions, SpectrumProbe};
pub use trainer::{
    preflight_report, probe_hessian_norm, train, train_resumable, verify_network_tape,
    verify_network_tape_with, TrainerState,
};
