//! Scalar sharpness metrics.
//!
//! Complements the 2-D scans with the two standard scalar summaries of
//! loss-surface sharpness: Keskar-style ε-sharpness (worst random loss
//! increase in a relative ℓ∞ box) and SAM sharpness (loss increase along
//! the ascent direction at a fixed ℓ2 radius). Both shrink when HERO's
//! regularization works.

use crate::surface::LossOracle;
use hero_tensor::rng::Rng;
use hero_tensor::{Result, Tensor, TensorError};

/// Keskar-style ε-sharpness estimate: the largest loss increase found by
/// random search inside the box `|δ_j| ≤ eps · (|w_j| + 1)`, normalized by
/// `1 + base_loss` (as in Keskar et al.), in percent.
///
/// Random search is a lower bound on the true (maximized) sharpness; with
/// a few dozen samples it ranks flat vs sharp minima reliably.
///
/// # Errors
///
/// Propagates oracle errors; rejects non-positive `eps` or zero samples.
pub fn epsilon_sharpness(
    oracle: &mut dyn LossOracle,
    params: &[Tensor],
    eps: f32,
    samples: usize,
    rng: &mut impl Rng,
) -> Result<f32> {
    if eps <= 0.0 || samples == 0 {
        return Err(TensorError::InvalidArgument(
            "epsilon_sharpness needs eps > 0 and samples > 0".into(),
        ));
    }
    let base = oracle.loss(params)?;
    let mut worst = base;
    let mut shifted: Vec<Tensor> = params.to_vec();
    for _ in 0..samples {
        for (s, p) in shifted.iter_mut().zip(params) {
            *s = p.clone();
            for (v, &w) in s.data_mut().iter_mut().zip(p.data()) {
                let bound = eps * (w.abs() + 1.0);
                *v += rng.gen_range(-bound..=bound);
            }
        }
        worst = worst.max(oracle.loss(&shifted)?);
    }
    Ok(100.0 * (worst - base) / (1.0 + base))
}

/// SAM sharpness: `max_{‖δ‖₂ ≤ rho} L(W + δ) − L(W)` approximated at the
/// first-order ascent point `δ = rho · g/‖g‖`, given the gradient `g` at
/// `W` (callers obtain it from their training stack; this crate stays
/// gradient-free).
///
/// # Errors
///
/// Propagates oracle errors; rejects a non-positive radius or a zero
/// gradient.
pub fn sam_sharpness(
    oracle: &mut dyn LossOracle,
    params: &[Tensor],
    grads: &[Tensor],
    rho: f32,
) -> Result<f32> {
    if rho <= 0.0 {
        return Err(TensorError::InvalidArgument(
            "sam_sharpness needs rho > 0".into(),
        ));
    }
    let gnorm = hero_tensor::global_norm_l2(grads);
    if gnorm <= f32::MIN_POSITIVE {
        return Err(TensorError::InvalidArgument(
            "sam_sharpness needs a nonzero gradient".into(),
        ));
    }
    let base = oracle.loss(params)?;
    let mut shifted: Vec<Tensor> = params.to_vec();
    for ((s, p), g) in shifted.iter_mut().zip(params).zip(grads) {
        *s = p.clone();
        s.axpy(rho / gnorm, g)?;
    }
    Ok(oracle.loss(&shifted)? - base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::rng::StdRng;

    fn bowl(k: f32) -> impl FnMut(&[Tensor]) -> Result<f32> {
        move |ps: &[Tensor]| Ok(0.5 * k * ps[0].norm_l2_sq())
    }

    #[test]
    fn epsilon_sharpness_ranks_curvature() {
        let params = vec![Tensor::zeros([8])];
        let mut rng = StdRng::seed_from_u64(0);
        let sharp = epsilon_sharpness(&mut bowl(50.0), &params, 0.05, 32, &mut rng).unwrap();
        let flat = epsilon_sharpness(&mut bowl(0.5), &params, 0.05, 32, &mut rng).unwrap();
        assert!(sharp > 10.0 * flat, "sharp {sharp} vs flat {flat}");
        assert!(flat >= 0.0);
    }

    #[test]
    fn epsilon_sharpness_grows_with_radius() {
        let params = vec![Tensor::zeros([8])];
        let mut rng = StdRng::seed_from_u64(1);
        let small = epsilon_sharpness(&mut bowl(4.0), &params, 0.01, 32, &mut rng).unwrap();
        let large = epsilon_sharpness(&mut bowl(4.0), &params, 0.1, 32, &mut rng).unwrap();
        assert!(large > small);
    }

    #[test]
    fn epsilon_sharpness_validates() {
        let params = vec![Tensor::zeros([2])];
        let mut rng = StdRng::seed_from_u64(2);
        assert!(epsilon_sharpness(&mut bowl(1.0), &params, 0.0, 8, &mut rng).is_err());
        assert!(epsilon_sharpness(&mut bowl(1.0), &params, 0.1, 0, &mut rng).is_err());
    }

    #[test]
    fn sam_sharpness_matches_quadratic_closed_form() {
        // f = 0.5 k ||x||²; at x0 with g = k x0, ascent point x0(1 + rho/||g||·k)...
        // Evaluate directly: at x0 = (1, 0), k = 2: g = (2, 0), ||g|| = 2.
        // shifted = x0 + rho * g/||g|| = (1 + rho, 0).
        // increase = 0.5*2*((1+rho)^2 - 1) = (1+rho)^2 - 1.
        let params = vec![Tensor::from_vec(vec![1.0, 0.0], [2]).unwrap()];
        let grads = vec![Tensor::from_vec(vec![2.0, 0.0], [2]).unwrap()];
        let rho = 0.5;
        let got = sam_sharpness(&mut bowl(2.0), &params, &grads, rho).unwrap();
        let expected = (1.0f32 + rho).powi(2) - 1.0;
        assert!((got - expected).abs() < 1e-4, "{got} vs {expected}");
    }

    #[test]
    fn sam_sharpness_ranks_curvature() {
        let params = vec![Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap()];
        let g_sharp = vec![params[0].scale(50.0)];
        let g_flat = vec![params[0].scale(0.5)];
        let sharp = sam_sharpness(&mut bowl(50.0), &params, &g_sharp, 0.1).unwrap();
        let flat = sam_sharpness(&mut bowl(0.5), &params, &g_flat, 0.1).unwrap();
        assert!(sharp > flat * 10.0);
    }

    #[test]
    fn sam_sharpness_validates() {
        let params = vec![Tensor::ones([2])];
        let zero_grad = vec![Tensor::zeros([2])];
        assert!(sam_sharpness(&mut bowl(1.0), &params, &zero_grad, 0.1).is_err());
        let g = vec![Tensor::ones([2])];
        assert!(sam_sharpness(&mut bowl(1.0), &params, &g, 0.0).is_err());
    }
}
