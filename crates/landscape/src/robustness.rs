//! Empirical weight-perturbation robustness probes.
//!
//! These measure directly what Theorems 1-3 reason about: how much the
//! loss rises under random ℓ2- or ℓ∞-bounded weight perturbations of a
//! given radius.

use crate::surface::LossOracle;
use hero_tensor::rng::Rng;
use hero_tensor::{fill_standard_normal, global_norm_l2, Result, Tensor};

/// Which norm ball perturbations are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerturbNorm {
    /// ℓ2 sphere of the given radius (generalization, Theorem 1).
    L2,
    /// ℓ∞ box of the given radius — each coordinate uniform in `[-r, r]`,
    /// the quantization perturbation model (Theorem 2).
    Linf,
}

/// Summary of a random-perturbation probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessProbe {
    /// Perturbation radius used.
    pub radius: f32,
    /// Loss at the unperturbed weights.
    pub base_loss: f32,
    /// Mean loss over the sampled perturbations.
    pub mean_loss: f32,
    /// Worst sampled loss.
    pub max_loss: f32,
}

impl RobustnessProbe {
    /// Mean loss increase over the base loss.
    pub fn mean_increase(&self) -> f32 {
        self.mean_loss - self.base_loss
    }

    /// Worst sampled loss increase.
    pub fn max_increase(&self) -> f32 {
        self.max_loss - self.base_loss
    }
}

/// Samples `samples` random perturbations of the given radius and norm and
/// measures the resulting losses.
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn probe_robustness(
    oracle: &mut dyn LossOracle,
    params: &[Tensor],
    norm: PerturbNorm,
    radius: f32,
    samples: usize,
    rng: &mut impl Rng,
) -> Result<RobustnessProbe> {
    let base_loss = oracle.loss(params)?;
    let mut mean = 0.0;
    let mut worst = f32::NEG_INFINITY;
    let mut shifted: Vec<Tensor> = params.to_vec();
    for _ in 0..samples {
        match norm {
            PerturbNorm::L2 => {
                // Gaussian direction scaled to the sphere of `radius`.
                let mut delta: Vec<Tensor> = params
                    .iter()
                    .map(|p| {
                        let mut t = Tensor::zeros(p.shape().clone());
                        fill_standard_normal(&mut t, rng);
                        t
                    })
                    .collect();
                let n = global_norm_l2(&delta).max(f32::MIN_POSITIVE);
                for d in &mut delta {
                    d.scale_in_place(radius / n);
                }
                for ((s, p), d) in shifted.iter_mut().zip(params).zip(&delta) {
                    *s = p.add(d)?;
                }
            }
            PerturbNorm::Linf => {
                for (s, p) in shifted.iter_mut().zip(params) {
                    *s = p.clone();
                    for v in s.data_mut() {
                        *v += rng.gen_range(-radius..=radius);
                    }
                }
            }
        }
        let l = oracle.loss(&shifted)?;
        mean += l;
        worst = worst.max(l);
    }
    mean /= samples.max(1) as f32;
    Ok(RobustnessProbe {
        radius,
        base_loss,
        mean_loss: mean,
        max_loss: worst,
    })
}

/// Sweeps the probe over several radii, returning one probe per radius.
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn robustness_curve(
    oracle: &mut dyn LossOracle,
    params: &[Tensor],
    norm: PerturbNorm,
    radii: &[f32],
    samples: usize,
    rng: &mut impl Rng,
) -> Result<Vec<RobustnessProbe>> {
    radii
        .iter()
        .map(|&r| probe_robustness(oracle, params, norm, r, samples, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::rng::StdRng;

    fn bowl(k: f32) -> impl FnMut(&[Tensor]) -> Result<f32> {
        move |ps: &[Tensor]| Ok(0.5 * k * ps[0].norm_l2_sq())
    }

    #[test]
    fn probe_reports_zero_increase_at_zero_radius() {
        let params = vec![Tensor::zeros([4])];
        let p = probe_robustness(
            &mut bowl(3.0),
            &params,
            PerturbNorm::L2,
            0.0,
            8,
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap();
        assert_eq!(p.base_loss, 0.0);
        assert!(p.mean_increase().abs() < 1e-7);
        assert!(p.max_increase().abs() < 1e-7);
    }

    #[test]
    fn l2_probe_on_quadratic_matches_theory() {
        // On 0.5*k*||x||², an ℓ2 perturbation of radius r from the origin
        // raises the loss by exactly 0.5*k*r².
        let params = vec![Tensor::zeros([8])];
        let p = probe_robustness(
            &mut bowl(2.0),
            &params,
            PerturbNorm::L2,
            0.5,
            16,
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        assert!((p.mean_increase() - 0.25).abs() < 1e-4);
        assert!((p.max_increase() - 0.25).abs() < 1e-4);
    }

    #[test]
    fn sharper_bowl_is_less_robust() {
        let params = vec![Tensor::zeros([8])];
        let mut rng = StdRng::seed_from_u64(2);
        let sharp = probe_robustness(
            &mut bowl(50.0),
            &params,
            PerturbNorm::Linf,
            0.1,
            16,
            &mut rng,
        )
        .unwrap();
        let flat = probe_robustness(
            &mut bowl(0.5),
            &params,
            PerturbNorm::Linf,
            0.1,
            16,
            &mut rng,
        )
        .unwrap();
        assert!(sharp.mean_increase() > 10.0 * flat.mean_increase());
    }

    #[test]
    fn linf_samples_respect_the_box() {
        // Track the largest coordinate seen via a capturing oracle.
        let params = vec![Tensor::zeros([16])];
        use std::cell::Cell;
        let max_seen = Cell::new(0.0f32);
        let mut oracle = |ps: &[Tensor]| {
            max_seen.set(max_seen.get().max(ps[0].norm_linf()));
            Ok(0.0)
        };
        probe_robustness(
            &mut oracle,
            &params,
            PerturbNorm::Linf,
            0.25,
            32,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        assert!(max_seen.get() <= 0.25 + 1e-6);
        assert!(max_seen.get() > 0.2); // and the box is actually explored
    }

    #[test]
    fn curve_grows_with_radius() {
        let params = vec![Tensor::zeros([8])];
        let curve = robustness_curve(
            &mut bowl(4.0),
            &params,
            PerturbNorm::L2,
            &[0.1, 0.2, 0.4, 0.8],
            8,
            &mut StdRng::seed_from_u64(4),
        )
        .unwrap();
        assert_eq!(curve.len(), 4);
        for pair in curve.windows(2) {
            assert!(pair[1].mean_increase() > pair[0].mean_increase());
        }
    }
}
