//! # hero-hessian
//!
//! Curvature analysis for the HERO (DAC 2022) reproduction: the
//! finite-difference Hessian-vector product that powers HERO's regularizer
//! gradient, power iteration for λ_max, the paper's ‖Hz‖ probe (Fig. 2a),
//! Hutchinson trace estimation, and the computable Theorem 3 robustness
//! bounds.
//!
//! Everything works through the [`GradOracle`] trait — any closure mapping
//! parameters to `(loss, gradients)` — so the tools apply equally to test
//! quadratics ([`Quadratic`]) and real networks.
//!
//! # Examples
//!
//! ```
//! use hero_hessian::{power_iteration, PowerIterConfig, Quadratic};
//! use hero_tensor::Tensor;
//! use hero_tensor::rng::StdRng;
//!
//! # fn main() -> Result<(), hero_tensor::TensorError> {
//! let q = Quadratic::diag(&[1.0, 7.0]);
//! let mut oracle = q.oracle();
//! let params = vec![Tensor::zeros([2])];
//! let res = power_iteration(
//!     &mut oracle,
//!     &params,
//!     PowerIterConfig::default(),
//!     &mut StdRng::seed_from_u64(0),
//! )?;
//! assert!((res.eigenvalue - 7.0).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod bounds;
mod hvp;
mod lanczos;
mod norm;
mod power;
mod quadratic;

pub use bounds::BoundInputs;
pub use hvp::{fd_hvp, fd_hvp_into, perturbed, perturbed_into, GradOracle};
pub use lanczos::{lanczos_spectrum, LanczosResult};
pub use norm::{
    eigen_sq_sum_estimate, hessian_norm_probe, hutchinson_trace, layer_scaled_direction,
    layer_scaled_direction_into,
};
pub use power::{power_iteration, PowerIterConfig, PowerIterResult};
pub use quadratic::Quadratic;
