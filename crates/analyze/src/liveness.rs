//! Dataflow passes over a structurally sound tape: dead-node detection,
//! unused parameters, and constant-foldable subgraphs.

use crate::diag::{DiagCode, Diagnostic};
use crate::verify::provenance;
use crate::AnalyzeOptions;
use hero_autodiff::NodeTrace;

/// Consumers of each node, considering only well-formed (backward) edges.
pub(crate) fn consumer_lists(tape: &[NodeTrace]) -> Vec<Vec<usize>> {
    let mut consumers = vec![Vec::new(); tape.len()];
    for (i, node) in tape.iter().enumerate() {
        for &p in &node.parents {
            if p < i {
                consumers[p].push(i);
            }
        }
    }
    consumers
}

/// The root set: explicit roots when given (invalid indices ignored),
/// otherwise every sink (node nothing consumes).
pub(crate) fn roots(
    tape: &[NodeTrace],
    consumers: &[Vec<usize>],
    opts: &AnalyzeOptions,
) -> Vec<usize> {
    if opts.roots.is_empty() {
        (0..tape.len())
            .filter(|&i| consumers[i].is_empty())
            .collect()
    } else {
        opts.roots
            .iter()
            .copied()
            .filter(|&r| r < tape.len())
            .collect()
    }
}

pub(crate) fn liveness_pass(tape: &[NodeTrace], opts: &AnalyzeOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if tape.is_empty() {
        return out;
    }
    let consumers = consumer_lists(tape);
    let roots = roots(tape, &consumers, opts);

    // Reachability: ancestors of any root.
    let mut reachable = vec![false; tape.len()];
    let mut stack: Vec<usize> = roots.clone();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut reachable[i], true) {
            continue;
        }
        for &p in &tape[i].parents {
            if p < i && !reachable[p] {
                stack.push(p);
            }
        }
    }

    // Constancy: an input is constant unless listed as variable; an
    // interior node is constant when every parent is.
    let variable = opts.variable_inputs.as_deref();
    let mut constant = vec![false; tape.len()];
    for (i, node) in tape.iter().enumerate() {
        constant[i] = if node.op == "input" {
            variable.is_some_and(|v| !v.contains(&i))
        } else {
            !node.parents.is_empty() && node.parents.iter().all(|&p| p < i && constant[p])
        };
    }

    for (i, node) in tape.iter().enumerate() {
        let is_root = roots.contains(&i);
        if node.op == "input" {
            if consumers[i].is_empty() && !is_root {
                out.push(Diagnostic {
                    node: i,
                    op: node.op.to_string(),
                    code: DiagCode::UnusedParameter,
                    message: "leaf is consumed by no op and is not an output".to_string(),
                    provenance: vec![i],
                });
            }
            continue;
        }
        if !reachable[i] {
            out.push(Diagnostic {
                node: i,
                op: node.op.to_string(),
                code: DiagCode::DeadNode,
                message: "node cannot reach any output; its value is computed and discarded"
                    .to_string(),
                provenance: provenance(tape, i),
            });
            continue;
        }
        // Report constant subgraphs at their fold boundary: a constant node
        // feeding a non-constant consumer (or serving as an output).
        if constant[i] && (is_root || consumers[i].iter().any(|&c| !constant[c])) {
            out.push(Diagnostic {
                node: i,
                op: node.op.to_string(),
                code: DiagCode::ConstantFoldable,
                message: "subgraph rooted here depends on no variable input and could be \
                          precomputed once"
                    .to_string(),
                provenance: provenance(tape, i),
            });
        }
    }
    out
}
