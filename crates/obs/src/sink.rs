//! Structured sinks: the per-run JSONL event stream, the console renderer
//! and the end-of-run artifact writer (summary table + Chrome trace).
//!
//! An [`Event`] is one structured record — an epoch's metrics, one
//! quantization-sweep point, a bench row. Emitting it renders the optional
//! human-readable line to stdout (the console sink, which is how the repro
//! binaries keep their familiar output) and, when a run is active, appends
//! one JSON line to `results/TRACE_<run>.jsonl`.
//!
//! A run is activated either explicitly ([`init_run`]) or from the
//! environment ([`init_from_env`], the `HERO_TRACE=1` switch). [`finish`]
//! closes the run: it prints the span-summary table, writes
//! `SUMMARY_<run>.json` and `TRACE_<run>.chrome.json`, and appends the
//! summary rows and final counter values to the JSONL stream.

use crate::json::JsonObj;
use crate::{chrome, counters, span, summary};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

#[derive(Debug)]
struct Run {
    name: String,
    dir: PathBuf,
    file: std::fs::File,
}

static RUN: Mutex<Option<Run>> = Mutex::new(None);

fn with_run<R>(f: impl FnOnce(&mut Option<Run>) -> R) -> R {
    f(&mut RUN.lock().unwrap_or_else(PoisonError::into_inner))
}

/// One field value of a structured event.
#[derive(Debug, Clone)]
enum Field {
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

/// Builder for one structured telemetry event.
///
/// # Examples
///
/// ```
/// use hero_obs::Event;
///
/// Event::new("epoch")
///     .u64("epoch", 3)
///     .f64("train_loss", 0.41)
///     .human(format!("epoch {:>3}: loss {:.3}", 3, 0.41))
///     .emit();
/// ```
#[derive(Debug, Clone)]
#[must_use = "an event does nothing until `.emit()` is called"]
pub struct Event {
    kind: &'static str,
    fields: Vec<(String, Field)>,
    human: Option<String>,
}

impl Event {
    /// Starts an event of the given kind (the `ev` field of the JSON
    /// line).
    pub fn new(kind: &'static str) -> Self {
        Event {
            kind,
            fields: Vec::new(),
            human: None,
        }
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.to_string(), Field::U64(v)));
        self
    }

    /// Adds a float field (NaN/Inf serialize as `null`).
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.to_string(), Field::F64(v)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.to_string(), Field::Str(v.to_string())));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.fields.push((key.to_string(), Field::Bool(v)));
        self
    }

    /// Sets the human-readable console rendering (printed to stdout on
    /// emit, whether or not a run is active).
    pub fn human(mut self, line: impl Into<String>) -> Self {
        self.human = Some(line.into());
        self
    }

    /// Serializes the structured part as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("ev", self.kind).u64("t_us", span::now_us());
        for (k, v) in &self.fields {
            match v {
                Field::U64(n) => o.u64(k, *n),
                Field::F64(n) => o.f64(k, *n),
                Field::Str(s) => o.str(k, s),
                Field::Bool(b) => o.bool(k, *b),
            };
        }
        o.finish()
    }

    /// Renders the console line (if any) and appends the JSON line to the
    /// active run's trace stream (if one is installed).
    pub fn emit(self) {
        if let Some(h) = &self.human {
            println!("{h}");
        }
        #[cfg(not(feature = "obs-off"))]
        emit_line(&self.to_json());
    }
}

/// Appends one already-serialized JSON line to the active trace stream
/// (best effort — telemetry never fails the computation it observes).
#[cfg(not(feature = "obs-off"))]
fn emit_line(json: &str) {
    with_run(|run| {
        if let Some(run) = run.as_mut() {
            let _ = run.file.write_all(json.as_bytes());
            let _ = run.file.write_all(b"\n");
        }
    });
}

/// True when a JSONL trace stream is currently installed.
pub fn run_active() -> bool {
    with_run(|run| run.is_some())
}

/// Path of the JSONL stream for run `name` under `dir`.
pub fn trace_path(dir: &std::path::Path, name: &str) -> PathBuf {
    dir.join(format!("TRACE_{name}.jsonl"))
}

/// Installs the JSONL trace stream `dir/TRACE_<name>.jsonl`, replacing any
/// active run. Does not by itself enable span tracing — pair with
/// [`crate::enable`] / [`crate::enable_events`] (or use
/// [`init_from_env`]).
///
/// Under `obs-off` this is a no-op returning `Ok(())` without touching the
/// filesystem.
///
/// # Errors
///
/// Returns any I/O error from directory creation or file creation.
pub fn init_run(dir: impl Into<PathBuf>, name: &str) -> std::io::Result<()> {
    let dir = dir.into();
    #[cfg(feature = "obs-off")]
    {
        let _ = (dir, name);
        Ok(())
    }
    #[cfg(not(feature = "obs-off"))]
    {
        std::fs::create_dir_all(&dir)?;
        let file = std::fs::File::create(trace_path(&dir, name))?;
        with_run(|run| {
            *run = Some(Run {
                name: name.to_string(),
                dir,
                file,
            });
        });
        Ok(())
    }
}

/// Activates tracing from the environment: when `HERO_TRACE` is set to
/// anything but `0`/empty, enables the span tracer with event capture and
/// installs the JSONL stream for run `default_run` (overridable via
/// `HERO_TRACE_RUN`; directory via `HERO_TRACE_DIR`, default `results`;
/// event-buffer cap via `HERO_TRACE_EVENTS`, default 200 000).
///
/// Returns whether tracing was activated. Call once at binary start; pair
/// with [`finish`] at exit.
pub fn init_from_env(default_run: &str) -> bool {
    let flag = std::env::var("HERO_TRACE").unwrap_or_default();
    if flag.is_empty() || flag == "0" {
        return false;
    }
    if cfg!(feature = "obs-off") {
        eprintln!("hero-obs: HERO_TRACE set but this binary was built with `obs-off`");
        return false;
    }
    let cap = std::env::var("HERO_TRACE_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    span::enable_events(cap);
    let dir = std::env::var("HERO_TRACE_DIR").unwrap_or_else(|_| "results".to_string());
    let name = std::env::var("HERO_TRACE_RUN").unwrap_or_else(|_| default_run.to_string());
    match init_run(&dir, &name) {
        Ok(()) => {
            Event::new("run_start").str("run", &name).emit();
            true
        }
        Err(e) => {
            eprintln!("hero-obs: cannot open trace stream in `{dir}`: {e}");
            false
        }
    }
}

/// Paths written by [`finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArtifacts {
    /// The JSONL event stream.
    pub trace: PathBuf,
    /// The run-summary table (`SUMMARY_<run>.json`).
    pub summary: PathBuf,
    /// The Chrome-trace export (`TRACE_<run>.chrome.json`).
    pub chrome: PathBuf,
}

/// Closes the active run: prints the span-summary table and counter values
/// to stdout, appends them to the JSONL stream, and writes the summary and
/// Chrome-trace artifacts next to it. Returns the artifact paths, or
/// `None` when no run was active (in which case the summary table is still
/// printed if any spans were recorded).
pub fn finish() -> Option<RunArtifacts> {
    let rows = span::summary_rows();
    let counters = counters::snapshot();
    let series = crate::series::take_series();
    if !rows.is_empty() {
        println!("\n-- span summary --");
        print!("{}", summary::render(&rows));
        let active: Vec<String> = counters
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if !active.is_empty() {
            println!("counters: {}", active.join("  "));
        }
    }
    let run = with_run(Option::take)?;
    let Run {
        name,
        dir,
        mut file,
    } = run;
    for r in &rows {
        let line = {
            let mut o = JsonObj::new();
            o.str("ev", "span_summary")
                .u64("t_us", span::now_us())
                .raw("row", &r.to_json());
            o.finish()
        };
        let _ = file.write_all(line.as_bytes());
        let _ = file.write_all(b"\n");
    }
    for s in &series {
        let line = {
            let mut o = JsonObj::new();
            o.str("ev", "series_summary")
                .u64("t_us", span::now_us())
                .raw("row", &s.to_json());
            o.finish()
        };
        let _ = file.write_all(line.as_bytes());
        let _ = file.write_all(b"\n");
    }
    let counters_line = {
        let mut o = JsonObj::new();
        o.str("ev", "counters").u64("t_us", span::now_us());
        for (k, v) in &counters {
            o.u64(k, *v);
        }
        o.finish()
    };
    let _ = file.write_all(counters_line.as_bytes());
    let _ = file.write_all(b"\n");
    let _ = file.flush();
    drop(file);

    // One array holds both shapes: span rows (keyed `phase`) and series
    // roll-ups (keyed `series`) — readers select by key.
    let summary_path = dir.join(format!("SUMMARY_{name}.json"));
    let _ = std::fs::write(
        &summary_path,
        crate::json::array_lines(
            rows.iter()
                .map(summary::SummaryRow::to_json)
                .chain(series.iter().map(crate::series::SeriesSnapshot::to_json)),
        ),
    );
    let chrome_path = dir.join(format!("TRACE_{name}.chrome.json"));
    let events = span::events_snapshot();
    let _ = std::fs::write(&chrome_path, chrome::to_chrome_json(&events));
    let artifacts = RunArtifacts {
        trace: trace_path(&dir, &name),
        summary: summary_path,
        chrome: chrome_path,
    };
    println!(
        "trace artifacts: {} ({} events), {}, {}",
        artifacts.trace.display(),
        events.len(),
        artifacts.summary.display(),
        artifacts.chrome.display()
    );
    Some(artifacts)
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "hero-obs-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn emitted_events_round_trip_through_the_jsonl_stream() {
        let _l = crate::testutil::locked();
        let dir = temp_dir();
        span::enable();
        span::reset();
        init_run(&dir, "test").expect("init run");
        Event::new("epoch")
            .u64("epoch", 7)
            .f64("train_loss", 0.5)
            .f64("test_acc", f64::NAN)
            .emit();
        {
            let _s = span("unit_work");
        }
        let artifacts = finish().expect("artifacts");
        span::disable();
        let text = std::fs::read_to_string(&artifacts.trace).expect("read trace");
        let epoch_line = text
            .lines()
            .find(|l| l.contains("\"ev\": \"epoch\""))
            .expect("epoch event present");
        let v = parse(epoch_line).expect("valid json line");
        assert_eq!(v.get("epoch").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("train_loss").and_then(Value::as_f64), Some(0.5));
        assert!(v.get("test_acc").is_some_and(Value::is_null));
        // Summary + counters land in the stream too.
        assert!(text.contains("\"ev\": \"span_summary\""));
        assert!(text.contains("\"ev\": \"counters\""));
        // The side artifacts parse as JSON.
        let summary = std::fs::read_to_string(&artifacts.summary).expect("summary");
        assert!(parse(&summary).expect("summary json").as_arr().is_some());
        let chrome = std::fs::read_to_string(&artifacts.chrome).expect("chrome");
        assert!(parse(&chrome).expect("chrome json").as_arr().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_roll_into_summary_artifact() {
        let _l = crate::testutil::locked();
        let dir = temp_dir();
        span::enable();
        span::reset();
        let _ = crate::series::take_series();
        init_run(&dir, "series").expect("init run");
        crate::series::record("lambda_max", 1, 5.0);
        crate::series::record("lambda_max", 2, 4.0);
        {
            let _s = span("unit_work");
        }
        let artifacts = finish().expect("artifacts");
        span::disable();
        let text = std::fs::read_to_string(&artifacts.trace).expect("trace");
        assert!(text.contains("\"ev\": \"series_summary\""));
        let summary = std::fs::read_to_string(&artifacts.summary).expect("summary");
        let v = parse(&summary).expect("summary json");
        let arr = v.as_arr().expect("array");
        let row = arr
            .iter()
            .find(|r| r.get("series").is_some())
            .expect("series row in summary");
        assert_eq!(
            row.get("series").and_then(Value::as_str),
            Some("lambda_max")
        );
        assert_eq!(row.get("count").and_then(Value::as_f64), Some(2.0));
        assert_eq!(row.get("last").and_then(Value::as_f64), Some(4.0));
        // finish() drained the registry for the next run.
        assert!(crate::series::series_snapshot().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_without_a_run_returns_none() {
        let _l = crate::testutil::locked();
        with_run(|r| *r = None);
        assert!(finish().is_none());
        assert!(!run_active());
    }

    #[test]
    fn emit_without_a_run_is_silent() {
        let _l = crate::testutil::locked();
        with_run(|r| *r = None);
        Event::new("orphan").u64("x", 1).emit(); // must not panic
    }
}
