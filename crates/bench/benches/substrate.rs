//! Substrate micro-benchmarks: the tensor/autodiff primitives the whole
//! reproduction stands on (matmul, im2col convolution, dataset generation,
//! landscape scanning).

use hero_autodiff::Graph;
use hero_bench::timing::{default_budget, time_op};
use hero_data::{SynthGenerator, SynthSpec};
use hero_landscape::{filter_normalized_direction, scan_2d};
use hero_tensor::rng::StdRng;
use hero_tensor::{ConvGeometry, Tensor};

fn main() {
    let budget = default_budget();

    for n in [32usize, 64, 128] {
        let a = Tensor::from_fn([n, n], |i| ((i[0] * 7 + i[1]) % 13) as f32 - 6.0);
        let b = Tensor::from_fn([n, n], |i| ((i[0] + i[1] * 5) % 11) as f32 - 5.0);
        time_op(&format!("matmul_{n}"), budget, || {
            std::hint::black_box(a.matmul(&b).unwrap());
        });
    }

    let x = Tensor::from_fn([8, 8, 8, 8], |i| (i.iter().sum::<usize>() % 7) as f32 * 0.2);
    let w = Tensor::from_fn([16, 8 * 9], |i| ((i[0] + i[1]) % 5) as f32 * 0.1 - 0.2);
    time_op("conv2d_fwd_bwd_8x8x8x8", budget, || {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let wv = g.input(w.clone());
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let y = g.conv2d(xv, wv, geom).unwrap();
        let sq = g.square(y);
        let loss = g.sum(sq);
        std::hint::black_box(g.backward(loss).unwrap());
    });

    let gen = SynthGenerator::new(SynthSpec::default());
    time_op("synth_generate_200", budget, || {
        std::hint::black_box(gen.generate(200, 1));
    });

    // A quadratic-surface scan: measures grid-evaluation machinery.
    let params = vec![Tensor::from_fn([256], |i| (i[0] as f32 * 0.01).sin())];
    let mut rng = StdRng::seed_from_u64(0);
    let d1 = filter_normalized_direction(&params, &mut rng).unwrap();
    let d2 = filter_normalized_direction(&params, &mut rng).unwrap();
    time_op("scan_2d_quadratic_17x17", budget, || {
        let mut oracle = |ps: &[Tensor]| Ok(ps[0].norm_l2_sq());
        std::hint::black_box(scan_2d(&mut oracle, &params, &d1, &d2, 1.0, 17).unwrap());
    });
}
