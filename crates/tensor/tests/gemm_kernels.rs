//! Kernel-equivalence corpus for the GEMM micro-kernels.
//!
//! # Tolerance contract (per kernel variant)
//!
//! * **Scalar vs [`matmul_reference`] — bitwise.** The scalar packed
//!   kernel accumulates with plain mul+add in ascending-k order, exactly
//!   the per-element summation order of the reference kernel, and panel
//!   zero-padding only ever pads the MR/NR dimensions (never k), so
//!   padding cannot perturb valid sums. Every element must match to the
//!   bit. (The operand generator below avoids exact zeros because the
//!   reference kernel skips `a == 0.0` terms, which can flip a signed
//!   zero in degenerate all-zero prefixes — a non-goal to reproduce.)
//! * **AVX2/FMA vs reference — bounded, not bitwise.** `vfmadd231ps`
//!   fuses the multiply-add rounding, so each of the k accumulation steps
//!   rounds once instead of twice. The accumulated difference is bounded
//!   by the standard running-sum error model: for every output element,
//!   `|simd − reference| ≤ (k + 4) · ε · Σᵢ|aᵢ·bᵢ|` (the +4 absorbs the
//!   final tile add into C). Equality of shapes, zero-padding tails, and
//!   transpose handling is still exact — only rounding differs.
//! * **Parallel vs serial — bitwise, any thread count.** Worker chunk
//!   boundaries are NR-aligned C column ranges; every element's summation
//!   order is the serial order regardless of which worker owns it.
//! * **Fused im2col vs materialized — bitwise.** The packing loop samples
//!   the same values `im2col` writes (padding included), in the same
//!   reduction order.

use hero_tensor::{
    force_gemm_kernel, gemm_pool_stats, matmul_reference, set_gemm_threads, ConvGeometry,
    GemmKernel, Tensor,
};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes tests that touch the process-wide kernel/thread overrides.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

struct OverrideGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        force_gemm_kernel(None);
        set_gemm_threads(None);
    }
}

fn lock_overrides() -> OverrideGuard {
    OverrideGuard(OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Seeded operand values on an odd grid — never exactly 0.0 (see the
/// signed-zero note in the module docs), bounded in (−1.65, 1.65).
fn fill(dims: [usize; 2], salt: usize) -> Tensor {
    Tensor::from_fn(dims, |i| {
        let v = (i[0] * 31 + i[1] * 13 + salt * 17) % 23;
        (v as f32 - 11.5) / 7.0
    })
}

/// Edge-dim corpus: unit dims, MR−1/MR/MR+1 and NR−1/NR/NR+1 for both
/// kernels' tile sizes (4×8 scalar, 6×16 AVX2), KC straddles, and
/// tall/skinny panels that force zero-padded tails.
const SHAPES: [(usize, usize, usize); 14] = [
    (1, 1, 1),
    (3, 7, 2),
    (4, 8, 4),
    (5, 9, 5),
    (5, 15, 11),
    (6, 16, 8),
    (7, 17, 9),
    (12, 32, 64),
    (13, 31, 17),
    (1, 100, 3),
    (100, 1, 3),
    (64, 96, 255),
    (33, 47, 256),
    (29, 53, 257),
];

/// All three transpose variants of `op(A)·op(B)` via the public API,
/// with operands laid out for each storage order.
fn products(m: usize, n: usize, k: usize, salt: usize) -> Vec<(&'static str, Tensor, Tensor)> {
    let a = fill([m, k], salt);
    let b = fill([k, n], salt + 1);
    let at = a.transpose().unwrap(); // (k, m) storage for tn
    let bt = b.transpose().unwrap(); // (n, k) storage for nt
    vec![
        (
            "nn",
            a.matmul(&b).unwrap(),
            matmul_reference(&a, &b).unwrap(),
        ),
        (
            "tn",
            at.matmul_tn(&b).unwrap(),
            matmul_reference(&a, &b).unwrap(),
        ),
        (
            "nt",
            a.matmul_nt(&bt).unwrap(),
            matmul_reference(&a, &b).unwrap(),
        ),
    ]
}

#[test]
fn scalar_kernel_is_bitwise_equal_to_reference() {
    let _g = lock_overrides();
    force_gemm_kernel(Some(GemmKernel::Scalar));
    for &(m, n, k) in &SHAPES {
        for (variant, got, want) in products(m, n, k, m + n + k) {
            assert_eq!(got.dims(), want.dims());
            for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "({m},{n},{k}) {variant} idx {i}: {g} vs {w}"
                );
            }
        }
    }
}

#[test]
fn simd_kernel_stays_within_fma_error_bound() {
    let _g = lock_overrides();
    force_gemm_kernel(Some(GemmKernel::Avx2Fma));
    for &(m, n, k) in &SHAPES {
        // Per-element bound: (k+4)·ε·Σ|a·b|, computed with the reference
        // kernel over |A|, |B|.
        let a = fill([m, k], m + n + k);
        let b = fill([k, n], m + n + k + 1);
        let abs_bound = matmul_reference(&a.abs(), &b.abs()).unwrap();
        for (variant, got, want) in products(m, n, k, m + n + k) {
            for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
                let tol = (k as f32 + 4.0) * f32::EPSILON * abs_bound.data()[i];
                assert!(
                    (g - w).abs() <= tol,
                    "({m},{n},{k}) {variant} idx {i}: {g} vs {w}, tol {tol}"
                );
            }
        }
    }
}

#[test]
fn parallel_macro_kernel_is_bitwise_equal_to_serial() {
    let _g = lock_overrides();
    // Big enough to clear the parallel flop threshold; odd n exercises a
    // partial trailing panel on the last worker.
    let (m, n, k) = (96, 272, 192);
    let a = fill([m, k], 5);
    let b = fill([k, n], 6);
    for kernel in [GemmKernel::Scalar, GemmKernel::Avx2Fma] {
        force_gemm_kernel(Some(kernel));
        set_gemm_threads(Some(0));
        let serial = a.matmul(&b).unwrap();
        for threads in [2, 3, 4] {
            set_gemm_threads(Some(threads));
            let parallel = a.matmul(&b).unwrap();
            for (i, (&s, &p)) in serial.data().iter().zip(parallel.data()).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    p.to_bits(),
                    "{}: threads={threads} idx {i}: {s} vs {p}",
                    kernel.name()
                );
            }
        }
    }
    // The worker pool really ran: it exposes per-worker stats once spun up.
    assert!(
        !gemm_pool_stats().is_empty(),
        "parallel path never engaged the worker pool"
    );
}

#[test]
fn fused_im2col_is_bitwise_equal_to_materialized_for_both_kernels() {
    let _g = lock_overrides();
    let x = Tensor::from_fn([2, 3, 8, 8], |i| {
        (((i[0] * 29 + i[1] * 17 + i[2] * 5 + i[3] * 3) % 19) as f32 - 9.5) / 6.0
    });
    for kernel in [GemmKernel::Scalar, GemmKernel::Avx2Fma] {
        force_gemm_kernel(Some(kernel));
        for geom in [
            ConvGeometry::new(8, 8, 3, 1, 1).unwrap(),
            ConvGeometry::new(8, 8, 3, 2, 1).unwrap(),
            ConvGeometry::new(8, 8, 1, 1, 0).unwrap(),
        ] {
            let cols = x.im2col(&geom).unwrap();
            let w = fill([5, cols.dims()[0]], 7);
            let fused = w.matmul_im2col(&x, &geom).unwrap();
            let materialized = w.matmul(&cols).unwrap();
            for (i, (&f, &mv)) in fused.data().iter().zip(materialized.data()).enumerate() {
                assert_eq!(
                    f.to_bits(),
                    mv.to_bits(),
                    "{} fwd k={} idx {i}",
                    kernel.name(),
                    geom.kernel
                );
            }
            let dy = fill([5, cols.dims()[1]], 8);
            let fused_dw = dy.matmul_nt_im2col(&x, &geom).unwrap();
            let materialized_dw = dy.matmul_nt(&cols).unwrap();
            for (i, (&f, &mv)) in fused_dw
                .data()
                .iter()
                .zip(materialized_dw.data())
                .enumerate()
            {
                assert_eq!(
                    f.to_bits(),
                    mv.to_bits(),
                    "{} dW k={} idx {i}",
                    kernel.name(),
                    geom.kernel
                );
            }
        }
    }
}

#[test]
fn forced_kernel_is_reported_as_active() {
    let _g = lock_overrides();
    force_gemm_kernel(Some(GemmKernel::Scalar));
    assert_eq!(hero_tensor::active_gemm_kernel(), GemmKernel::Scalar);
    force_gemm_kernel(None);
    // Auto mode resolves to a real kernel either way; on AVX2 hardware
    // without HERO_NO_SIMD it must pick the SIMD variant.
    let auto = hero_tensor::active_gemm_kernel();
    assert!(matches!(auto, GemmKernel::Scalar | GemmKernel::Avx2Fma));
}
