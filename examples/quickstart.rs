//! Quickstart: train the ResNet20 stand-in with HERO on the CIFAR-10
//! preset, compare against SGD, and post-training-quantize both to 4 bits.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p hero-core --example quickstart
//! ```

use hero_core::experiment::{model_config, quant_sweep, MethodKind};
use hero_core::{train, TrainConfig};
use hero_data::Preset;
use hero_nn::models::ModelKind;
use hero_tensor::rng::StdRng;
use hero_tensor::TensorError;

fn main() -> Result<(), TensorError> {
    // A small-but-real run: a few minutes on one CPU core.
    let preset = Preset::C10;
    let (train_set, test_set) = preset.load(1.0);
    let epochs = 40;
    println!(
        "training on {} ({} train / {} test samples), {epochs} epochs\n",
        preset.paper_name(),
        train_set.len(),
        test_set.len()
    );

    for method in [MethodKind::Hero, MethodKind::Sgd] {
        // Identical initialization for a fair comparison.
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = ModelKind::Resnet.build(model_config(preset), &mut rng);
        let config = TrainConfig::new(method.tuned(), epochs);
        let record = train(&mut net, &train_set, &test_set, &config)?;
        println!(
            "{:16}  train acc {:5.1}%  test acc {:5.1}%  (gap {:4.1}%)",
            method.paper_name(),
            100.0 * record.final_train_acc,
            100.0 * record.final_test_acc,
            100.0 * record.final_gap(),
        );

        // Post-training quantization, no finetuning (the paper's setting).
        let mut trained = hero_core::experiment::TrainedModel {
            net,
            record,
            method,
        };
        let curve = quant_sweep(&mut trained, &test_set, &[3, 4, 6, 8])?;
        for (bits, acc) in &curve.points {
            println!("    {bits}-bit weights -> test acc {:5.1}%", 100.0 * acc);
        }
        println!();
    }
    println!("expect: HERO at or above SGD at full precision with a visibly smaller");
    println!("train-test gap. For the full quantization-robustness comparison (more");
    println!("epochs, all models, all precisions) run the repro_* binaries in hero-bench.");
    Ok(())
}
