#!/usr/bin/env bash
# Tier-1 verification gate: build, full test suite, sanitizer test suite,
# formatting, lints, and a quick bench smoke run. Everything runs offline.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q (HERO_THREADS=1: sharded executor, one worker)"
HERO_THREADS=1 cargo test -q --workspace

echo "==> cargo test -q (HERO_THREADS=4: sharded executor, four workers)"
HERO_THREADS=4 cargo test -q --workspace

echo "==> cargo test -q (HERO_NO_SIMD=1: portable scalar GEMM kernel)"
HERO_NO_SIMD=1 cargo test -q --workspace

echo "==> cargo test -q (sanitize feature: pool + tape sanitizers)"
cargo test -q -p hero-tensor --features sanitize
cargo test -q -p hero-autodiff --features sanitize

echo "==> cargo test -q (obs-off feature: instrumentation compiled out)"
cargo test -q -p hero-obs --features obs-off
cargo test -q -p hero-bench --features obs-off

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> scripts/lint.sh"
scripts/lint.sh

echo "==> golden model-artifact byte pin (HERO_THREADS=1 vs 4, scalar GEMM)"
# The committed golden artifact (tests/golden/) pins the bytes of the
# fixed smoke training recipe. Regenerate it under both worker counts
# with the canonical scalar kernel: each run must reproduce the committed
# file bit-for-bit, so any drift in the trainer, RNG, serializer or
# executor sharding fails the gate loudly. (Regenerate the pin
# deliberately with `hero train --golden-recipe tests/golden/...` when a
# change is *meant* to alter the trajectory.)
mkdir -p results/artifacts
for t in 1 4; do
  HERO_NO_SIMD=1 HERO_THREADS="$t" cargo run --release -p hero-bench --bin hero -- \
    train --golden-recipe "results/artifacts/golden_t$t.ha"
  cmp tests/golden/c10_resnet_hero_smoke.ha "results/artifacts/golden_t$t.ha" || {
    echo "FAIL: golden artifact bytes drifted at HERO_THREADS=$t"; exit 1; }
done
sha256sum tests/golden/c10_resnet_hero_smoke.ha
rm -f results/artifacts/golden_t1.ha results/artifacts/golden_t4.ha

echo "==> artifact pipeline smoke (train --save -> inspect -> preflight -> quantize)"
# Drives the deterministic artifact pipeline end to end on the smoke
# preset and leaves the artifacts in results/artifacts/ for upload: a
# trained model, the preflight-stamped copy, and a 4-bit quantized
# snapshot. save->load->save byte identity and checkpoint/resume
# equality are covered by the test suites above; this exercises the
# same flow through the shipped binary.
cargo run --release -p hero-bench --bin hero -- \
  train --preset c10 --model resnet --method hero --scale 0.25 --epochs 2 \
  --seed 42 --git-rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  --save results/artifacts/model.ha
cargo run --release -p hero-bench --bin hero -- \
  artifact inspect --path results/artifacts/model.ha
cargo run --release -p hero-bench --bin hero -- \
  preflight --preset c10 --scale 0.25 --artifact results/artifacts/model.ha \
  --stamp results/artifacts/model_stamped.ha --out-dir results/analyze
cargo run --release -p hero-bench --bin hero -- \
  quantize --preset c10 --scale 0.25 --artifact results/artifacts/model_stamped.ha \
  --bits 3,4,8 --save results/artifacts/model_int4.ha --save-bits 4
cargo run --release -p hero-bench --bin hero -- \
  artifact inspect --path results/artifacts/model_int4.ha

echo "==> pre-flight analyzer over the example networks"
mkdir -p results/analyze
# `hero preflight` exits nonzero when the analyzer finds error-severity
# diagnostics, so the loop fails the gate if any example model regresses.
for m in resnet mobilenet vgg; do
  cargo run --release -p hero-bench --bin hero -- \
    preflight --preset c10 --model "$m" --scale 0.25 --bits 3,4,8 \
    --out-dir results/analyze
done

echo "==> quantization-noise crosscheck (certified bounds vs measurement)"
# Trains each smoke model briefly, then fake-quantizes every layer at every
# grid width and checks the measured probe-loss shift against the static
# noise-domain certificate (DESIGN.md §14). Any soundness violation exits
# nonzero, as does a zonotope cell wider than its interval cell or a
# rank-constant raw sensitivity matrix (DESIGN.md §17); the tightness
# artifact records interval vs zonotope width per layer×bits. Ranking
# overlap is recorded in the JSON but not gated: the 2-epoch smoke models
# are too noisy for a stable sensitivity ranking.
cargo run --release -p hero-bench --bin hero -- \
  noise-crosscheck --preset c10 --models resnet,mobilenet,vgg \
  --scale 0.25 --epochs 2 --out results/analyze/noise_crosscheck.json \
  --tightness results/analyze/tightness.json

echo "==> spectrum observatory smoke (hero spectrum, SGD vs HERO)"
mkdir -p results
# Trains two short runs with per-epoch spectrum telemetry, takes a deep
# SLQ + per-layer-trace probe of each final model, and writes the
# comparison artifact (density grids, per-layer traces, Spearman overlap
# between the empirical trace ranking and the static sensitivity
# ranking). The overlap is recorded, not gated: 2-epoch smoke models are
# too noisy for a stable ranking. Runs traced so the JSONL stream carries
# the per-epoch `spectrum` / `spectrum_layer` events and the summary
# rolls up the `spectrum/*` series.
HERO_TRACE=1 HERO_TRACE_RUN=spectrum \
  cargo run --release -p hero-bench --bin hero -- \
  spectrum --preset c10 --model resnet --methods sgd,hero \
  --scale 0.2 --epochs 2 --steps 6 --probes 2 \
  --out results/SPECTRUM_resnet_c10.json

echo "==> spectrum probe cost (spectrum_cost --quick)"
HERO_BENCH_OUT="$PWD/results/BENCH_spectrum.json" \
  cargo bench -p hero-bench --bench spectrum_cost -- --quick

echo "==> bench smoke (step_cost --quick, HERO_THREADS=1 vs 4)"
mkdir -p results
# HERO_BENCH_OUT is resolved in the bench executable's working directory
# (the crate dir under cargo), so pass absolute paths.
HERO_THREADS=1 HERO_BENCH_OUT="$PWD/results/BENCH_step_t1.json" \
  cargo bench -p hero-bench --bench step_cost -- --quick
HERO_THREADS=4 HERO_BENCH_OUT="$PWD/results/BENCH_step_t4.json" \
  cargo bench -p hero-bench --bench step_cost -- --quick
# Keep the canonical artifact name pointing at the single-worker run.
cp results/BENCH_step_t1.json results/BENCH_step.json
# Diff the per-step cost rows between the two worker counts into an
# artifact so CI surfaces the parallel step cost next to the serial one.
grep '"name": "step_' results/BENCH_step_t1.json > results/.steps_t1 || true
grep '"name": "step_' results/BENCH_step_t4.json > results/.steps_t4 || true
diff -u results/.steps_t1 results/.steps_t4 > results/BENCH_step_threads.diff || true
rm -f results/.steps_t1 results/.steps_t4
echo "step-cost rows (1 thread vs 4 threads):"
cat results/BENCH_step_threads.diff

echo "==> GEMM kernel sweep (gemm_shapes --quick, GFLOP/s per variant)"
HERO_BENCH_OUT="$PWD/results/BENCH_gemm.json" \
  cargo bench -p hero-bench --bench gemm_shapes -- --quick
# Tabulate GFLOP/s per shape across kernel variants (reference / scalar /
# avx2fma) into a diff-friendly artifact so CI surfaces SIMD speedups —
# and regressions — next to the raw JSON.
awk -F'"' '
  /"name"/ {
    name = $4
    gf = $0; sub(/.*"gflops": /, "", gf); sub(/[,}].*/, "", gf)
    variant = "single"
    if (sub(/_reference$/, "", name)) variant = "reference"
    else if (sub(/_scalar$/, "", name)) variant = "scalar"
    else if (sub(/_avx2fma$/, "", name)) variant = "avx2fma"
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    gflops[name "/" variant] = gf
  }
  END {
    printf "%-34s %10s %10s %10s %8s\n", "shape", "reference", "scalar", "avx2fma", "simd-x"
    for (i = 1; i <= n; i++) {
      s = order[i]
      ref = gflops[s "/reference"]; sc = gflops[s "/scalar"]; sx = gflops[s "/avx2fma"]
      if (sc == "" || sx == "") {
        printf "%-34s %10s\n", s, gflops[s "/single"]
      } else {
        printf "%-34s %10.2f %10.2f %10.2f %7.2fx\n", s, ref, sc, sx, sx / sc
      }
    }
  }
' results/BENCH_gemm.json > results/BENCH_gemm_gflops.txt
cat results/BENCH_gemm_gflops.txt

echo "==> observability overhead gate (disabled tracer vs obs-off build)"
on_json="$(mktemp)"
off_json="$(mktemp)"
trap 'rm -f "$on_json" "$off_json"' EXIT
HERO_BENCH_OUT="$on_json" cargo bench -p hero-bench --bench overhead
HERO_BENCH_OUT="$off_json" cargo bench -p hero-bench --features obs-off --bench overhead
on_ns="$(grep overhead_step_HERO "$on_json" | sed 's/.*"ns_per_iter": \([0-9.eE+-]*\).*/\1/')"
off_ns="$(grep overhead_step_HERO "$off_json" | sed 's/.*"ns_per_iter": \([0-9.eE+-]*\).*/\1/')"
awk -v on="$on_ns" -v off="$off_ns" 'BEGIN {
  ratio = on / off
  printf "overhead_step_HERO: instrumented %.3f ms/iter, obs-off %.3f ms/iter (ratio %.4f)\n", on / 1e6, off / 1e6, ratio
  if (ratio > 1.03) { print "FAIL: disabled instrumentation costs more than 3%"; exit 1 }
}'

echo "verify.sh: all gates passed"
