//! Reproduces Table 2: test accuracy under symmetric label noise (20-80%)
//! for the ResNet20 and MobileNetV2 stand-ins on the CIFAR-10 preset.

use hero_bench::{banner, emit_artifact, scale_from_args};
use hero_core::experiment::run_table2;
use hero_core::report::render_table2;
use hero_nn::models::ModelKind;

fn main() {
    hero_obs::init_from_env("repro_table2");
    let scale = scale_from_args();
    banner("Table 2 (noisy-label training)", scale);
    let ratios = [0.2, 0.4, 0.6, 0.8];
    for model in [ModelKind::Resnet, ModelKind::Mobilenet] {
        let table = run_table2(model, &ratios, scale).expect("table 2 runs");
        emit_artifact(
            &format!("table2_{}", model.paper_name()),
            render_table2(&table),
        );
    }
    hero_obs::finish();
}
