//! # hero-bench
//!
//! Benchmarks and reproduction binaries for the HERO (DAC 2022)
//! reproduction. The `repro_*` binaries regenerate every table and figure
//! of the paper's evaluation section (see DESIGN.md §3 for the index);
//! the plain-`fn main()` harnesses under `benches/` measure component
//! costs (the per-step overhead of each training method, quantization
//! throughput, curvature-probe cost) with the in-tree [`timing`] module —
//! no external bench framework, so everything builds offline.
//!
//! Run a reproduction binary with:
//!
//! ```text
//! cargo run --release -p hero-bench --bin repro_table1 [-- --fast]
//! ```
//!
//! and a bench with:
//!
//! ```text
//! cargo bench -p hero-bench --bench step_cost [-- --quick]
//! ```

#![warn(missing_docs)]

use hero_core::experiment::Scale;

pub mod timing;

/// Parses the common `--fast` flag used by every reproduction binary.
///
/// `--fast` selects the smoke-test scale; anything else (or nothing) runs
/// the full reproduction scale recorded in EXPERIMENTS.md.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--fast") {
        Scale::fast()
    } else {
        Scale::full()
    }
}

/// Emits the standard header for a reproduction binary: a `banner` event
/// whose human rendering is the familiar console header.
pub fn banner(what: &str, scale: Scale) {
    hero_obs::Event::new("banner")
        .str("what", what)
        .f64("data_scale", f64::from(scale.data))
        .u64("epochs_small", scale.epochs_small as u64)
        .u64("epochs_large", scale.epochs_large as u64)
        .human(format!(
            "== HERO reproduction: {what} ==\n\
             scale: data x{:.2}, {} epochs (8x8 presets) / {} epochs (16x16)\n",
            scale.data, scale.epochs_small, scale.epochs_large
        ))
        .emit();
}

/// Emits a rendered table / figure as a structured `artifact` event; the
/// console sees the rendering unchanged, and a `HERO_TRACE=1` run also
/// records which artifact was produced (the rendering itself lives in the
/// stdout log, not the trace stream).
pub fn emit_artifact(name: &str, rendered: impl Into<String>) {
    hero_obs::Event::new("artifact")
        .str("name", name)
        .human(rendered)
        .emit();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // Test binaries never pass --fast, so this exercises the default arm.
        let s = scale_from_args();
        assert_eq!(s.data, Scale::full().data);
    }
}
