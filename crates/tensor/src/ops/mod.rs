//! Operation modules implementing `Tensor` methods.

pub(crate) mod broadcast;
pub(crate) mod elementwise;
pub(crate) mod gemm;
pub(crate) mod im2col;
pub(crate) mod matmul;
pub(crate) mod norm;
pub(crate) mod pad;
pub(crate) mod pool;
pub(crate) mod reduce;
