//! Theorem 3's perturbation lower bounds (Eq. 6, 7, 12).
//!
//! Given the gradient norm, the dominant Hessian eigenvalue `v` and a loss
//! tolerance `c`, these bounds give the minimal ℓ2 / ℓ∞ perturbation
//! strength that could raise the loss by `c` under the second-order model.
//! Larger bounds mean a more robust model — HERO's objective is to enlarge
//! them by shrinking `v`.

/// Inputs to the Theorem 3 bounds at a particular weight configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundInputs {
    /// ℓ2 norm of the gradient, ‖g‖₂.
    pub grad_l2: f32,
    /// ℓ1 norm of the gradient, |g| in the paper's Eq. 7 notation.
    pub grad_l1: f32,
    /// Dominant Hessian eigenvalue `v = λ_max(H)` (must be ≥ 0 for the
    /// bounds to apply).
    pub eigenvalue: f32,
    /// Number of nonzero weights `n = ‖W‖₀`.
    pub nonzeros: usize,
    /// Loss-increase tolerance `c > 0`.
    pub tolerance: f32,
}

impl BoundInputs {
    /// Eq. (6): lower bound on ‖δ*‖₂, the smallest ℓ2 perturbation that can
    /// raise the loss by `c`. Governs the generalization gap (Theorem 1).
    ///
    /// Returns infinity when both the gradient and curvature vanish (no
    /// second-order path to a loss increase).
    pub fn l2_bound(&self) -> f32 {
        let g = self.grad_l2.max(0.0);
        let v = self.eigenvalue.max(0.0);
        let c = self.tolerance;
        if v <= f32::MIN_POSITIVE {
            // Limit v -> 0 of the bound is c / ||g||2.
            return if g <= f32::MIN_POSITIVE {
                f32::INFINITY
            } else {
                c / g
            };
        }
        if g <= f32::MIN_POSITIVE {
            // Limit g -> 0: sqrt(2c / v).
            return (2.0 * c / v).sqrt();
        }
        (g / v) * ((1.0 + 2.0 * v * c / (g * g)).sqrt() - 1.0)
    }

    /// Eq. (7): lower bound on ‖δ*‖∞, the smallest ℓ∞ perturbation that can
    /// raise the loss by `c`. Governs quantization robustness (Theorem 2):
    /// quantization with bin width Δ ≤ 2·bound cannot raise the loss past
    /// `c` under the second-order model.
    pub fn linf_bound(&self) -> f32 {
        let g = self.grad_l1.max(0.0);
        let v = self.eigenvalue.max(0.0);
        let n = self.nonzeros.max(1) as f32;
        let c = self.tolerance;
        if v <= f32::MIN_POSITIVE {
            return if g <= f32::MIN_POSITIVE {
                f32::INFINITY
            } else {
                c / g
            };
        }
        if g <= f32::MIN_POSITIVE {
            return self.linf_bound_grad_free();
        }
        (g / (n * v)) * ((1.0 + 2.0 * n * v * c / (g * g)).sqrt() - 1.0)
    }

    /// Eq. (12): the |g| → 0 limit of the ℓ∞ bound, `sqrt(2c/(n·v))` — the
    /// residual robustness after GRAD-L1 has fully optimized the gradient,
    /// still limited by curvature. This is the paper's argument for why
    /// first-order regularization alone is insufficient.
    pub fn linf_bound_grad_free(&self) -> f32 {
        let v = self.eigenvalue.max(0.0);
        let n = self.nonzeros.max(1) as f32;
        if v <= f32::MIN_POSITIVE {
            return f32::INFINITY;
        }
        (2.0 * self.tolerance / (n * v)).sqrt()
    }

    /// The largest quantization bin width Δ whose worst-case perturbation
    /// (Δ/2 per weight) stays within the ℓ∞ bound: `Δ = 2 · linf_bound()`.
    pub fn max_safe_bin_width(&self) -> f32 {
        2.0 * self.linf_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BoundInputs {
        BoundInputs {
            grad_l2: 1.0,
            grad_l1: 4.0,
            eigenvalue: 2.0,
            nonzeros: 100,
            tolerance: 0.1,
        }
    }

    #[test]
    fn bounds_are_positive_and_finite() {
        let b = base();
        assert!(b.l2_bound() > 0.0 && b.l2_bound().is_finite());
        assert!(b.linf_bound() > 0.0 && b.linf_bound().is_finite());
        assert!(b.linf_bound() < b.l2_bound()); // ℓ∞ ball is tighter per coordinate
    }

    #[test]
    fn bounds_increase_as_eigenvalue_decreases() {
        // The core claim of Theorem 3: smaller v => larger allowed perturbation.
        let mut prev_l2 = 0.0;
        let mut prev_linf = 0.0;
        for &v in &[8.0, 4.0, 2.0, 1.0, 0.5, 0.25] {
            let b = BoundInputs {
                eigenvalue: v,
                ..base()
            };
            assert!(b.l2_bound() > prev_l2);
            assert!(b.linf_bound() > prev_linf);
            prev_l2 = b.l2_bound();
            prev_linf = b.linf_bound();
        }
    }

    #[test]
    fn linf_bound_increases_as_grad_l1_decreases() {
        // The secondary monotonicity that justifies GRAD-L1.
        let lo = BoundInputs {
            grad_l1: 0.5,
            ..base()
        };
        let hi = BoundInputs {
            grad_l1: 8.0,
            ..base()
        };
        assert!(lo.linf_bound() > hi.linf_bound());
    }

    #[test]
    fn grad_free_limit_matches_eq12() {
        let b = BoundInputs {
            grad_l1: 0.0,
            ..base()
        };
        let expected = (2.0f32 * 0.1 / (100.0 * 2.0)).sqrt();
        assert!((b.linf_bound() - expected).abs() < 1e-6);
        assert!((b.linf_bound_grad_free() - expected).abs() < 1e-6);
    }

    #[test]
    fn grad_free_limit_is_approached_continuously() {
        // As |g| -> 0 the general bound converges to Eq. 12.
        let limit = base().linf_bound_grad_free();
        let near = BoundInputs {
            grad_l1: 1e-4,
            ..base()
        }
        .linf_bound();
        assert!((near - limit).abs() / limit < 1e-2);
    }

    #[test]
    fn zero_curvature_gives_first_order_bound() {
        let b = BoundInputs {
            eigenvalue: 0.0,
            ..base()
        };
        assert!((b.l2_bound() - 0.1 / 1.0).abs() < 1e-6); // c / ||g||2
        assert!((b.linf_bound() - 0.1 / 4.0).abs() < 1e-6); // c / |g|
    }

    #[test]
    fn flat_and_gradient_free_is_unbreakable() {
        let b = BoundInputs {
            grad_l1: 0.0,
            grad_l2: 0.0,
            eigenvalue: 0.0,
            ..base()
        };
        assert!(b.l2_bound().is_infinite());
        assert!(b.linf_bound().is_infinite());
    }

    #[test]
    fn safe_bin_width_doubles_linf_bound() {
        let b = base();
        assert!((b.max_safe_bin_width() - 2.0 * b.linf_bound()).abs() < 1e-7);
    }

    #[test]
    fn second_order_model_validates_l2_bound() {
        // On an exact quadratic, a perturbation of the bound's size along
        // the worst direction raises the loss by at most ~c.
        let b = BoundInputs {
            grad_l2: 1.0,
            grad_l1: 1.0,
            eigenvalue: 4.0,
            nonzeros: 1,
            tolerance: 0.05,
        };
        let r = b.l2_bound();
        // Worst-case 1-D increase: ||g|| r + v/2 r^2 should equal c exactly.
        let increase = 1.0 * r + 0.5 * 4.0 * r * r;
        assert!((increase - 0.05).abs() < 1e-4, "increase={increase}");
    }
}
