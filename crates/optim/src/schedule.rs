//! Learning-rate schedules.
//!
//! The paper trains every method with a cosine schedule from an initial
//! learning rate of 0.1 (§5.1); constant and step schedules are provided
//! for tests and ablations.

/// A learning-rate schedule mapping a step index to a learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant {
        /// The learning rate.
        lr: f32,
    },
    /// Cosine annealing from `lr` to `min_lr` over `total_steps` (the
    /// paper's setting with `min_lr = 0`).
    Cosine {
        /// Initial learning rate.
        lr: f32,
        /// Final learning rate.
        min_lr: f32,
        /// Horizon over which to anneal.
        total_steps: usize,
    },
    /// Multiply by `gamma` every `period` steps.
    Step {
        /// Initial learning rate.
        lr: f32,
        /// Decay factor per period.
        gamma: f32,
        /// Steps between decays.
        period: usize,
    },
}

impl LrSchedule {
    /// The paper's default: cosine from 0.1 to 0 over the training run.
    pub fn paper_default(total_steps: usize) -> Self {
        LrSchedule::Cosine {
            lr: 0.1,
            min_lr: 0.0,
            total_steps,
        }
    }

    /// Learning rate at `step` (0-based). Steps past the horizon clamp to
    /// the final value.
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Cosine {
                lr,
                min_lr,
                total_steps,
            } => {
                if total_steps == 0 {
                    return min_lr;
                }
                let t = (step.min(total_steps)) as f32 / total_steps as f32;
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Step { lr, gamma, period } => {
                let k = step.checked_div(period).unwrap_or(0);
                lr * gamma.powi(k as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant { lr: 0.05 };
        assert_eq!(s.at(0), 0.05);
        assert_eq!(s.at(10_000), 0.05);
    }

    #[test]
    fn cosine_starts_high_ends_low() {
        let s = LrSchedule::Cosine {
            lr: 0.1,
            min_lr: 0.0,
            total_steps: 100,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(50) - 0.05).abs() < 1e-6); // halfway is the midpoint
        assert!(s.at(100) < 1e-6);
        assert!(s.at(500) < 1e-6); // clamps past the horizon
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = LrSchedule::paper_default(200);
        let mut prev = f32::INFINITY;
        for step in 0..=200 {
            let lr = s.at(step);
            assert!(lr <= prev + 1e-7, "lr increased at step {step}");
            prev = lr;
        }
    }

    #[test]
    fn cosine_zero_horizon_is_min() {
        let s = LrSchedule::Cosine {
            lr: 0.1,
            min_lr: 0.01,
            total_steps: 0,
        };
        assert_eq!(s.at(0), 0.01);
    }

    #[test]
    fn step_decays_by_gamma() {
        let s = LrSchedule::Step {
            lr: 1.0,
            gamma: 0.1,
            period: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert!((s.at(10) - 0.1).abs() < 1e-7);
        assert!((s.at(25) - 0.01).abs() < 1e-7);
        // Zero period never decays rather than dividing by zero.
        let s0 = LrSchedule::Step {
            lr: 1.0,
            gamma: 0.1,
            period: 0,
        };
        assert_eq!(s0.at(100), 1.0);
    }

    #[test]
    fn paper_default_matches_section_5_1() {
        let s = LrSchedule::paper_default(100);
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!(s.at(100).abs() < 1e-6);
    }
}
