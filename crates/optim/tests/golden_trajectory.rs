//! Golden-trajectory regression pin: a 5-step HERO run on a fixed
//! quadratic objective with f32-exact expected losses. Any future change
//! to the kernels, the optimizer arithmetic, or the evaluation order that
//! silently shifts numerics — even by one ulp — fails this test and has
//! to justify updating the pinned values.

use hero_hessian::Quadratic;
use hero_optim::{Method, Optimizer};
use hero_tensor::Tensor;

/// The pinned losses of the canonical 5-step run (exact f32 values
/// captured from the reference implementation; compare bitwise).
const EXPECTED_LOSSES: [f32; 5] = [
    2.3875, // regenerate with `print_golden_trajectory` below
    1.9241921, 1.2339097, 0.59697205, 0.20512672,
];

fn run_hero_5_steps() -> Vec<f32> {
    let a = Tensor::from_vec(vec![2.0, 0.5, 0.0, 0.5, 3.0, 0.25, 0.0, 0.25, 1.5], [3, 3]).unwrap();
    let b = Tensor::from_vec(vec![0.1, -0.2, 0.05], [3]).unwrap();
    let q = Quadratic::new(a, b).unwrap();
    let mut opt = Optimizer::new(Method::Hero {
        h: 0.05,
        gamma: 0.1,
    })
    .with_momentum(0.9)
    .with_weight_decay(1e-4);
    let mut params = vec![Tensor::from_vec(vec![1.0, -1.0, 0.5], [3]).unwrap()];
    let mut oracle = q.oracle();
    let mut losses = Vec::with_capacity(5);
    for _ in 0..5 {
        let stats = opt.step(&mut oracle, &mut params, &[true], 0.05).unwrap();
        losses.push(stats.loss);
    }
    losses
}

#[test]
fn hero_5_step_losses_match_pinned_values_exactly() {
    let losses = run_hero_5_steps();
    let got: Vec<u32> = losses.iter().map(|l| l.to_bits()).collect();
    let want: Vec<u32> = EXPECTED_LOSSES.iter().map(|l| l.to_bits()).collect();
    assert_eq!(
        got, want,
        "numeric drift: got losses {losses:?}, expected {EXPECTED_LOSSES:?} \
         (if an intentional kernel change caused this, re-pin the constants)"
    );
}

/// Not a test: run with `cargo test -p hero-optim --test golden_trajectory \
/// -- --ignored --nocapture print_golden_trajectory` to regenerate the
/// pinned constants after an intentional numeric change.
#[test]
#[ignore]
fn print_golden_trajectory() {
    for l in run_hero_5_steps() {
        println!("{l:?} (bits {:#010x})", l.to_bits());
    }
}
