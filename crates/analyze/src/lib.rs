//! # hero-analyze
//!
//! Static analysis for [`hero_autodiff`] tapes.
//!
//! HERO's training step is a long op pipeline — tape-recorded forward ops,
//! finite-difference Hessian-vector products, perturbed SAM steps — where a
//! silent shape mismatch corrupts curvature estimates without failing any
//! test. This crate walks the tape's lowered trace IR
//! ([`hero_autodiff::NodeTrace`]) *before* relying on a model and checks,
//! statically:
//!
//! * **Structure** — parent indices in range, tape topologically ordered.
//! * **Shapes** — matmul inner-dim agreement, broadcast compatibility,
//!   reshape element-count conservation, conv/pool geometry, batch-norm
//!   parameter shapes, loss label counts.
//! * **Dataflow** — dead nodes, unused parameters, constant-foldable
//!   subgraphs.
//!
//! Findings come back as structured [`Diagnostic`]s (node index, op name,
//! provenance chain) in a [`Report`] instead of a panic mid-step.
//!
//! # Examples
//!
//! ```
//! use hero_analyze::{verify_graph, AnalyzeOptions};
//! use hero_autodiff::Graph;
//! use hero_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::arange(4));
//! let y = g.square(x);
//! let loss = g.sum(y);
//! let report = verify_graph(&g, &[loss]);
//! assert!(report.is_clean(), "{report}");
//! ```

#![warn(missing_docs)]

mod diag;
mod liveness;
mod verify;

pub use diag::{DiagCode, Diagnostic, Report, Severity};

use hero_autodiff::{Graph, NodeTrace, Var};

/// What the analyzer should treat as outputs and as per-step-varying
/// inputs.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Output nodes (e.g. the loss). Empty means "every sink is an
    /// output", which disables dead-node detection for sinks.
    pub roots: Vec<usize>,
    /// Input nodes whose values change every step (batch data, trainable
    /// parameters). `None` treats every input as variable, disabling
    /// constant-folding detection; `Some(vec![])` treats every input as
    /// constant.
    pub variable_inputs: Option<Vec<usize>>,
}

impl AnalyzeOptions {
    /// Options with the given output nodes and all inputs variable.
    pub fn with_roots(roots: Vec<usize>) -> Self {
        AnalyzeOptions {
            roots,
            variable_inputs: None,
        }
    }
}

/// Runs every pass over a lowered tape and collects the findings.
pub fn analyze(tape: &[NodeTrace], opts: &AnalyzeOptions) -> Report {
    let mut diagnostics = verify::structural_and_shape_pass(tape);
    // The dataflow passes assume backward edges; they skip malformed ones
    // themselves, so they can run even when structure errors exist.
    diagnostics.extend(liveness::liveness_pass(tape, opts));
    diagnostics.sort_by_key(|d| d.node);
    Report {
        diagnostics,
        nodes: tape.len(),
    }
}

/// Verifies a live [`Graph`] with the given output variables as roots.
pub fn verify_graph(g: &Graph, roots: &[Var]) -> Report {
    let opts = AnalyzeOptions::with_roots(roots.iter().map(Var::index).collect());
    analyze(&g.trace(), &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::{ConvGeometry, Tensor};

    #[test]
    fn clean_mlp_tape_produces_no_findings() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([4, 8], |i| 0.1 * (i[0] + i[1]) as f32));
        let w = g.input(Tensor::from_fn([8, 3], |i| 0.01 * (i[0] * 3 + i[1]) as f32));
        let b = g.input(Tensor::from_fn([3], |_| 0.1));
        let h = g.matmul(x, w).unwrap();
        let z = g.add(h, b).unwrap();
        let a = g.relu(z);
        let loss = g.cross_entropy(a, &[0, 1, 2, 0]).unwrap();
        let report = verify_graph(&g, &[loss]);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.nodes, 7);
    }

    #[test]
    fn clean_conv_tape_produces_no_findings() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_fn([2, 3, 8, 8], |i| {
            0.01 * (i[2] + i[3]) as f32
        }));
        let w = g.input(Tensor::from_fn([4, 3 * 3 * 3], |_| 0.02));
        let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
        let y = g.conv2d(x, w, geom).unwrap();
        let r = g.relu6(y);
        let p = g.max_pool2d(r, 2).unwrap();
        let q = g.avg_pool2d(p, 2).unwrap();
        let gap = g.global_avg_pool2d(q).unwrap();
        let loss = g.cross_entropy(gap, &[1, 3]).unwrap();
        let report = verify_graph(&g, &[loss]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn dead_branch_and_unused_input_are_flagged() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let unused = g.input(Tensor::arange(2));
        let y = g.square(x);
        let dead = g.scale(y, 2.0); // computed, never used by the loss
        let loss = g.sum(y);
        let report = verify_graph(&g, &[loss]);
        assert!(!report.has_errors(), "{report}");
        assert!(report.flags(unused.index(), DiagCode::UnusedParameter));
        assert!(report.flags(dead.index(), DiagCode::DeadNode));
    }

    #[test]
    fn constant_subgraph_is_flagged_at_its_fold_boundary() {
        let mut g = Graph::new();
        let data = g.input(Tensor::arange(4));
        let frozen = g.input(Tensor::from_fn([4], |_| 2.0));
        let fold_a = g.square(frozen); // constant
        let fold_b = g.scale(fold_a, 0.5); // constant — the boundary
        let mixed = g.mul(data, fold_b).unwrap();
        let loss = g.sum(mixed);
        let opts = AnalyzeOptions {
            roots: vec![loss.index()],
            variable_inputs: Some(vec![data.index()]),
        };
        let report = analyze(&g.trace(), &opts);
        assert!(!report.has_errors(), "{report}");
        assert!(report.flags(fold_b.index(), DiagCode::ConstantFoldable));
        // Interior constant nodes are not re-reported.
        assert!(!report.flags(fold_a.index(), DiagCode::ConstantFoldable));
    }

    #[test]
    fn all_variable_inputs_disable_constant_folding() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let y = g.square(x);
        let loss = g.sum(y);
        let report = verify_graph(&g, &[loss]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn report_renders_findings_with_provenance() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let y = g.square(x);
        let dead = g.scale(y, 3.0);
        let loss = g.sum(y);
        let report = verify_graph(&g, &[loss]);
        let text = report.to_string();
        assert!(text.contains("dead-node"), "{text}");
        assert!(text.contains(&format!("#{}", dead.index())), "{text}");
    }
}
