//! Define-by-run computation graph with reverse-mode differentiation.

use hero_tensor::{pool, Result, Shape, Tensor, TensorError};

/// Handle to a node in a [`Graph`]. Cheap to copy; only valid for the graph
/// that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The node's index within its graph (stable for the graph's lifetime).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One recorded operation. Parents are stored as graph indices; any context
/// the backward pass needs (argmax indices, saved activations) lives in the
/// variant.
#[derive(Debug)]
pub(crate) enum Op {
    /// Leaf node: an input or parameter.
    Input,
    /// Broadcast addition.
    Add(usize, usize),
    /// Broadcast subtraction.
    Sub(usize, usize),
    /// Broadcast (Hadamard) multiplication.
    Mul(usize, usize),
    /// Multiplication by a constant.
    Scale(usize, f32),
    /// Addition of a constant.
    AddScalar(usize, f32),
    /// Matrix product `(m,k) x (k,n)`.
    Matmul(usize, usize),
    /// Rectified linear unit.
    Relu(usize),
    /// ReLU clipped at 6 (MobileNet's activation).
    Relu6(usize),
    /// Element-wise square.
    Square(usize),
    /// Reshape (metadata only); stores the parent's shape.
    Reshape(usize, Shape),
    /// Sum of all elements to a scalar.
    Sum(usize),
    /// Mean of all elements to a scalar.
    Mean(usize),
    /// 2-D convolution via fused im2col-GEMM. No column matrix is saved:
    /// forward packs patches straight from the input, and backward
    /// recomputes the dW product the same fused way from the saved input
    /// node.
    Conv2d {
        /// Input node (NCHW).
        x: usize,
        /// Weight node `(out_c, in_c*k*k)`.
        w: usize,
        /// Window geometry.
        geom: hero_tensor::ConvGeometry,
        /// Batch size of `x`.
        n: usize,
        /// Channel count of `x`.
        c: usize,
    },
    /// Depthwise 2-D convolution (one filter per channel).
    DepthwiseConv2d {
        /// Input node (NCHW).
        x: usize,
        /// Weight node `(c, k, k)`.
        w: usize,
        /// Window geometry.
        geom: hero_tensor::ConvGeometry,
    },
    /// Batch normalization over (N, H, W) per channel; saves normalization
    /// context for backward.
    BatchNorm {
        /// Input node (NCHW).
        x: usize,
        /// Per-channel scale node `(c,)`.
        gamma: usize,
        /// Per-channel shift node `(c,)`.
        beta: usize,
        /// Saved normalized activations.
        xhat: Tensor,
        /// Saved per-channel `1/sqrt(var + eps)`.
        inv_std: Vec<f32>,
    },
    /// Non-overlapping max pooling; saves argmax routing.
    MaxPool {
        /// Input node (NCHW).
        x: usize,
        /// Saved flat source index per output element.
        arg: Vec<usize>,
    },
    /// Non-overlapping average pooling with window side `k`.
    AvgPool {
        /// Input node (NCHW).
        x: usize,
        /// Window side.
        k: usize,
    },
    /// Global average pooling `(n,c,h,w) -> (n,c)`.
    GlobalAvgPool(usize),
    /// Softmax cross-entropy against integer labels, averaged over the batch.
    CrossEntropy {
        /// Logits node `(batch, classes)`.
        logits: usize,
        /// Saved softmax probabilities.
        softmax: Tensor,
        /// Target class per row.
        labels: Vec<usize>,
    },
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// Leaky ReLU with the given negative-side slope.
    LeakyRelu(usize, f32),
    /// Natural logarithm.
    Ln(usize),
    /// Inverted dropout; saves the mask already divided by the keep
    /// probability.
    Dropout {
        /// Input node.
        x: usize,
        /// Saved `mask / keep_prob`.
        scaled_mask: Tensor,
    },
    /// Mean-squared-error against a constant target; saves `x - target`.
    MseLoss {
        /// Prediction node.
        x: usize,
        /// Saved residual.
        diff: Tensor,
        /// Smallest target element (range metadata for static analysis).
        target_lo: f32,
        /// Largest target element (range metadata for static analysis).
        target_hi: f32,
    },
    /// Label-smoothed softmax cross-entropy.
    CrossEntropySmoothed {
        /// Logits node `(batch, classes)`.
        logits: usize,
        /// Saved softmax probabilities.
        softmax: Tensor,
        /// Target class per row.
        labels: Vec<usize>,
        /// Smoothing coefficient.
        eps: f32,
    },
}

#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) op: Op,
}

/// A define-by-run computation graph.
///
/// Operations append nodes in topological order; [`Graph::backward`] then
/// walks the tape in reverse, accumulating adjoints. The graph is intended
/// to be rebuilt every training step (like eager-mode frameworks).
///
/// # Examples
///
/// ```
/// use hero_autodiff::Graph;
/// use hero_tensor::Tensor;
///
/// # fn main() -> Result<(), hero_tensor::TensorError> {
/// let mut g = Graph::new();
/// let x = g.input(Tensor::from_vec(vec![2.0, 3.0], [2])?);
/// let y = g.square(x);           // y = x^2
/// let loss = g.sum(y);           // loss = sum(x^2)
/// let grads = g.backward(loss)?;
/// assert_eq!(grads.get(x).unwrap().data(), &[4.0, 6.0]); // d/dx = 2x
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

/// Gradients produced by [`Graph::backward`], indexed by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the loss with respect to `v`, if `v` influenced the
    /// loss.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(Option::as_ref)
    }

    /// Removes and returns the gradient for `v`, avoiding a clone.
    pub fn take(&mut self, v: Var) -> Option<Tensor> {
        self.grads.get_mut(v.0).and_then(Option::take)
    }

    /// Recycles every remaining gradient buffer into the thread-local
    /// scratch pool. Call after [`Gradients::take`]-ing the gradients you
    /// keep, so intermediate adjoints feed the next step's leases instead
    /// of being freed.
    pub fn recycle(self) {
        for g in self.grads.into_iter().flatten() {
            pool::recycle_tensor(g);
        }
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a leaf tensor (input or parameter) and returns its handle.
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Input)
    }

    /// Clears the tape, recycling every node's forward value and the
    /// op-saved context tensors (im2col columns, softmax, dropout masks…)
    /// into the thread-local scratch pool so the next step's forward pass
    /// re-leases the same buffers.
    ///
    /// Invalidates every [`Var`] previously issued by this graph.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            pool::recycle_tensor(node.value);
            match node.op {
                Op::BatchNorm { xhat, .. } => pool::recycle_tensor(xhat),
                Op::CrossEntropy { softmax, .. } | Op::CrossEntropySmoothed { softmax, .. } => {
                    pool::recycle_tensor(softmax)
                }
                Op::Dropout { scaled_mask, .. } => pool::recycle_tensor(scaled_mask),
                Op::MseLoss { diff, .. } => pool::recycle_tensor(diff),
                _ => {}
            }
        }
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    pub(crate) fn push(&mut self, value: Tensor, op: Op) -> Var {
        #[cfg(feature = "sanitize")]
        self.taint_check(&value, &op);
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// NaN/Inf taint checker (sanitize builds only): every recorded forward
    /// value must be finite. Because the check runs at push time, the first
    /// node to fail *is* the origin of the taint — its parents were all
    /// validated when they were pushed — so the panic message pins the
    /// defect to one op and its provenance chain.
    #[cfg(feature = "sanitize")]
    fn taint_check(&self, value: &Tensor, op: &Op) {
        if value.data().iter().all(|v| v.is_finite()) {
            return;
        }
        hero_obs::counters::NAN_TAINT_TRIPS.incr();
        let bad = value
            .data()
            .iter()
            .position(|v| !v.is_finite())
            .unwrap_or(0);
        let mut chain = Vec::new();
        let mut next = op.parents().first().copied();
        while let Some(i) = next {
            let node = &self.nodes[i];
            chain.push(format!("#{i} {} {:?}", node.op.name(), node.value.dims()));
            next = node.op.parents().first().copied();
            if chain.len() >= 8 {
                chain.push("…".to_string());
                break;
            }
        }
        panic!(
            "hero-autodiff sanitize: non-finite value {} at flat index {bad} produced by \
             op `{}` (would be tape node #{}); provenance: [{}]",
            value.data()[bad],
            op.name(),
            self.nodes.len(),
            chain.join(" <- ")
        );
    }

    /// Broadcast element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns a broadcast error if the operand shapes are incompatible.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        let value = self.value(a).badd(self.value(b))?;
        Ok(self.push(value, Op::Add(a.0, b.0)))
    }

    /// Broadcast element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns a broadcast error if the operand shapes are incompatible.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var> {
        let value = self.value(a).bsub(self.value(b))?;
        Ok(self.push(value, Op::Sub(a.0, b.0)))
    }

    /// Broadcast element-wise product.
    ///
    /// # Errors
    ///
    /// Returns a broadcast error if the operand shapes are incompatible.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var> {
        let value = self.value(a).bmul(self.value(b))?;
        Ok(self.push(value, Op::Mul(a.0, b.0)))
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).scale(c);
        self.push(value, Op::Scale(a.0, c))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).add_scalar(c);
        self.push(value, Op::AddScalar(a.0, c))
    }

    /// Matrix product of two rank-2 nodes.
    ///
    /// # Errors
    ///
    /// Returns rank/dimension errors from [`Tensor::matmul`].
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var> {
        let value = self.value(a).matmul(self.value(b))?;
        Ok(self.push(value, Op::Matmul(a.0, b.0)))
    }

    /// Rectified linear unit, `max(x, 0)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).clamp_min(0.0);
        self.push(value, Op::Relu(a.0))
    }

    /// ReLU clipped at 6: `min(max(x, 0), 6)`.
    pub fn relu6(&mut self, a: Var) -> Var {
        let value = self.value(a).clamp(0.0, 6.0);
        self.push(value, Op::Relu6(a.0))
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let value = self.value(a).square();
        self.push(value, Op::Square(a.0))
    }

    /// Reshapes to a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if the volumes differ.
    pub fn reshape(&mut self, a: Var, shape: impl Into<Shape>) -> Result<Var> {
        let old_shape = self.value(a).shape().clone();
        let value = self.value(a).reshape(shape)?;
        Ok(self.push(value, Op::Reshape(a.0, old_shape)))
    }

    /// Sums all elements to a scalar node.
    pub fn sum(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).sum());
        self.push(value, Op::Sum(a.0))
    }

    /// Averages all elements to a scalar node.
    pub fn mean(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).mean());
        self.push(value, Op::Mean(a.0))
    }

    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `loss` is not a scalar
    /// (one-element) node.
    pub fn backward(&mut self, loss: Var) -> Result<Gradients> {
        if self.nodes[loss.0].value.numel() != 1 {
            return Err(TensorError::InvalidArgument(format!(
                "backward requires a scalar loss, got {} elements",
                self.nodes[loss.0].value.numel()
            )));
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::full(self.nodes[loss.0].value.shape().clone(), 1.0));

        for i in (0..=loss.0).rev() {
            let Some(grad) = grads[i].take() else {
                continue;
            };
            self.accumulate_parents(i, &grad, &mut grads)?;
            grads[i] = Some(grad);
        }
        Ok(Gradients { grads })
    }

    /// Routes `grad` (the adjoint of node `i`) to node `i`'s parents.
    fn accumulate_parents(
        &self,
        i: usize,
        grad: &Tensor,
        grads: &mut [Option<Tensor>],
    ) -> Result<()> {
        let add_grad = |idx: usize, g: Tensor, grads: &mut [Option<Tensor>]| -> Result<()> {
            match &mut grads[idx] {
                Some(acc) => acc.axpy(1.0, &g)?,
                slot @ None => *slot = Some(g),
            }
            Ok(())
        };
        match &self.nodes[i].op {
            Op::Input => {}
            Op::Add(a, b) => {
                let ga = grad.reduce_to_shape(self.nodes[*a].value.shape())?;
                let gb = grad.reduce_to_shape(self.nodes[*b].value.shape())?;
                add_grad(*a, ga, grads)?;
                add_grad(*b, gb, grads)?;
            }
            Op::Sub(a, b) => {
                let ga = grad.reduce_to_shape(self.nodes[*a].value.shape())?;
                let gb = grad.neg().reduce_to_shape(self.nodes[*b].value.shape())?;
                add_grad(*a, ga, grads)?;
                add_grad(*b, gb, grads)?;
            }
            Op::Mul(a, b) => {
                let ga = grad
                    .bmul(&self.nodes[*b].value)?
                    .reduce_to_shape(self.nodes[*a].value.shape())?;
                let gb = grad
                    .bmul(&self.nodes[*a].value)?
                    .reduce_to_shape(self.nodes[*b].value.shape())?;
                add_grad(*a, ga, grads)?;
                add_grad(*b, gb, grads)?;
            }
            Op::Scale(a, c) => add_grad(*a, grad.scale(*c), grads)?,
            Op::AddScalar(a, _) => add_grad(*a, grad.clone(), grads)?,
            Op::Matmul(a, b) => {
                // dA = dC B^T ; dB = A^T dC
                let ga = grad.matmul_nt(&self.nodes[*b].value)?;
                let gb = self.nodes[*a].value.matmul_tn(grad)?;
                add_grad(*a, ga, grads)?;
                add_grad(*b, gb, grads)?;
            }
            Op::Relu(a) => {
                let mask = self.nodes[*a]
                    .value
                    .map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                add_grad(*a, grad.mul(&mask)?, grads)?;
            }
            Op::Relu6(a) => {
                let mask = self.nodes[*a]
                    .value
                    .map(|v| if v > 0.0 && v < 6.0 { 1.0 } else { 0.0 });
                add_grad(*a, grad.mul(&mask)?, grads)?;
            }
            Op::Square(a) => {
                let g = grad.mul(&self.nodes[*a].value.scale(2.0))?;
                add_grad(*a, g, grads)?;
            }
            Op::Reshape(a, old_shape) => {
                add_grad(*a, grad.reshape(old_shape.clone())?, grads)?;
            }
            Op::Sum(a) => {
                let g = Tensor::full(self.nodes[*a].value.shape().clone(), grad.data()[0]);
                add_grad(*a, g, grads)?;
            }
            Op::Mean(a) => {
                let n = self.nodes[*a].value.numel() as f32;
                let g = Tensor::full(self.nodes[*a].value.shape().clone(), grad.data()[0] / n);
                add_grad(*a, g, grads)?;
            }
            // Ops with bespoke backward rules live in ops_nn.rs / ops_ext.rs.
            other => match other {
                Op::Sigmoid(..)
                | Op::Tanh(..)
                | Op::LeakyRelu(..)
                | Op::Ln(..)
                | Op::Dropout { .. }
                | Op::MseLoss { .. }
                | Op::CrossEntropySmoothed { .. } => {
                    self.accumulate_ext_parents(other, grad, grads)?
                }
                _ => self.accumulate_nn_parents(other, grad, grads)?,
            },
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_scalar_fn;

    #[test]
    fn input_value_round_trips() {
        let mut g = Graph::new();
        let t = Tensor::arange(3);
        let x = g.input(t.clone());
        assert_eq!(g.value(x), &t);
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn backward_requires_scalar_loss() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(3));
        assert!(g.backward(x).is_err());
    }

    #[test]
    fn grad_of_sum_is_ones() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let s = g.sum(x);
        let grads = g.backward(s).unwrap();
        assert_eq!(grads.get(x).unwrap().data(), &[1.0; 4]);
    }

    #[test]
    fn grad_of_mean_is_inverse_count() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(4));
        let s = g.mean(x);
        let grads = g.backward(s).unwrap();
        assert_eq!(grads.get(x).unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // loss = sum(x + x) -> dx = 2
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(3));
        let y = g.add(x, x).unwrap();
        let s = g.sum(y);
        let grads = g.backward(s).unwrap();
        assert_eq!(grads.get(x).unwrap().data(), &[2.0; 3]);
    }

    #[test]
    fn unused_inputs_have_no_grad() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(3));
        let unused = g.input(Tensor::arange(2));
        let s = g.sum(x);
        let mut grads = g.backward(s).unwrap();
        assert!(grads.get(unused).is_none());
        assert!(grads.take(x).is_some());
        assert!(grads.take(x).is_none()); // second take is empty
    }

    #[test]
    fn matmul_gradcheck() {
        let a0 = Tensor::from_fn([3, 4], |i| 0.1 * (i[0] as f32) - 0.2 * (i[1] as f32) + 0.3);
        let b0 = Tensor::from_fn([4, 2], |i| 0.2 * (i[0] as f32) + 0.1 * (i[1] as f32) - 0.4);
        // Check dL/dA where L = sum(A B)
        check_scalar_fn(&a0, 1e-2, 2e-2, |a| {
            let mut g = Graph::new();
            let av = g.input(a.clone());
            let bv = g.input(b0.clone());
            let c = g.matmul(av, bv).unwrap();
            let loss = g.sum(c);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(av).unwrap().clone(),
            )
        });
        // Check dL/dB
        check_scalar_fn(&b0, 1e-2, 2e-2, |b| {
            let mut g = Graph::new();
            let av = g.input(a0.clone());
            let bv = g.input(b.clone());
            let c = g.matmul(av, bv).unwrap();
            let loss = g.sum(c);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(bv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn mul_with_broadcast_gradcheck() {
        let x0 = Tensor::from_fn([2, 3], |i| 0.3 * (i[0] as f32) + 0.1 * (i[1] as f32) - 0.2);
        let w0 = Tensor::from_fn([3], |i| 0.5 - 0.2 * (i[0] as f32));
        check_scalar_fn(&w0, 1e-2, 2e-2, |w| {
            let mut g = Graph::new();
            let xv = g.input(x0.clone());
            let wv = g.input(w.clone());
            let y = g.mul(xv, wv).unwrap(); // broadcasts w over rows
            let loss = g.sum(y);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(wv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn relu_and_relu6_gradcheck() {
        // Values chosen away from the kinks at 0 and 6.
        let x0 = Tensor::from_vec(vec![-2.0, -0.5, 0.7, 3.0, 5.5, 7.0], [6]).unwrap();
        check_scalar_fn(&x0, 1e-3, 1e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = g.relu(xv);
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
        check_scalar_fn(&x0, 1e-3, 1e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = g.relu6(xv);
            let sq = g.square(y);
            let loss = g.sum(sq);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[test]
    fn relu6_clips_forward() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![-1.0, 3.0, 8.0], [3]).unwrap());
        let y = g.relu6(x);
        assert_eq!(g.value(y).data(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn composite_expression_gradcheck() {
        // loss = mean((2x + 1)^2 - x) exercises scale, add_scalar, square, sub, mean.
        let x0 = Tensor::from_fn([5], |i| 0.2 * (i[0] as f32) - 0.5);
        check_scalar_fn(&x0, 1e-3, 1e-2, |x| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let two_x = g.scale(xv, 2.0);
            let shifted = g.add_scalar(two_x, 1.0);
            let sq = g.square(shifted);
            let diff = g.sub(sq, xv).unwrap();
            let loss = g.mean(diff);
            let grads = g.backward(loss).unwrap();
            (
                g.value(loss).item().unwrap(),
                grads.get(xv).unwrap().clone(),
            )
        });
    }

    #[cfg(feature = "sanitize")]
    #[test]
    #[should_panic(expected = "non-finite")]
    fn taint_checker_pins_nan_to_originating_op() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![-1.0, 2.0], [2]).unwrap());
        let _ = g.ln(x); // ln(-1) = NaN — flagged at push time
    }

    #[test]
    fn reshape_routes_gradients() {
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(6));
        let m = g.reshape(x, [2, 3]).unwrap();
        let sq = g.square(m);
        let loss = g.sum(sq);
        let grads = g.backward(loss).unwrap();
        let gx = grads.get(x).unwrap();
        assert_eq!(gx.dims(), &[6]);
        assert_eq!(gx.data(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }
}
