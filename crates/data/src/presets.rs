//! Dataset presets standing in for the paper's CIFAR-10, CIFAR-100 and
//! ImageNet benchmarks (DESIGN.md §1).

use crate::synth::{Dataset, SynthGenerator, SynthSpec};

/// The three benchmark stand-ins used by the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// CIFAR-10 stand-in: 10 independent texture classes, 3×8×8.
    C10,
    /// CIFAR-100 stand-in: 100 fine classes over 20 super-textures, 3×8×8
    /// (fewer samples per class, lower absolute accuracy — the CIFAR-100
    /// relationship).
    C100,
    /// ImageNet stand-in: 50 classes at 3×16×16 (the scalability axis).
    In50,
}

impl Preset {
    /// The display name used in reports (matching the paper's tables).
    pub fn paper_name(self) -> &'static str {
        match self {
            Preset::C10 => "CIFAR-10",
            Preset::C100 => "CIFAR-100",
            Preset::In50 => "ImageNet",
        }
    }

    /// The generator spec for this preset.
    pub fn spec(self) -> SynthSpec {
        match self {
            Preset::C10 => SynthSpec {
                classes: 10,
                channels: 3,
                hw: 8,
                noise_std: 0.55,
                max_shift: 1,
                superclasses: 5,
                sample_texture: 0.0,
                seed: 0xC1FA_0010,
            },
            Preset::C100 => SynthSpec {
                classes: 100,
                channels: 3,
                hw: 8,
                noise_std: 0.45,
                max_shift: 1,
                superclasses: 20,
                sample_texture: 0.0,
                seed: 0xC1FA_0100,
            },
            Preset::In50 => SynthSpec {
                classes: 50,
                channels: 3,
                hw: 16,
                noise_std: 0.40,
                max_shift: 2,
                superclasses: 10,
                sample_texture: 0.0,
                seed: 0x1A6E_0050,
            },
        }
    }

    /// Number of classes.
    pub fn classes(self) -> usize {
        self.spec().classes
    }

    /// Input spatial side length.
    pub fn input_hw(self) -> usize {
        self.spec().hw
    }

    /// Default `(train, test)` sample counts scaled by `scale` (1.0 is the
    /// standard experiment size).
    pub fn sizes(self, scale: f32) -> (usize, usize) {
        let (train, test) = match self {
            Preset::C10 => (200, 400),
            Preset::C100 => (400, 600),
            Preset::In50 => (300, 500),
        };
        let s = |n: usize| ((n as f32 * scale).round() as usize).max(self.classes());
        (s(train), s(test))
    }

    /// Builds the generator and a `(train, test)` split at `scale`.
    pub fn load(self, scale: f32) -> (Dataset, Dataset) {
        let generator = SynthGenerator::new(self.spec());
        let (train_n, test_n) = self.sizes(scale);
        generator.train_test(train_n, test_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_specs_match_paper_structure() {
        assert_eq!(Preset::C10.classes(), 10);
        assert_eq!(Preset::C100.classes(), 100);
        assert_eq!(Preset::In50.classes(), 50);
        assert_eq!(Preset::C10.input_hw(), 8);
        assert_eq!(Preset::In50.input_hw(), 16);
        assert_eq!(Preset::C10.paper_name(), "CIFAR-10");
    }

    #[test]
    fn c100_has_superclass_structure() {
        assert_eq!(Preset::C100.spec().superclasses, 20);
        assert_eq!(Preset::C10.spec().superclasses, 5);
    }

    #[test]
    fn sizes_scale_and_stay_class_covering() {
        let (tr, te) = Preset::C10.sizes(1.0);
        assert_eq!((tr, te), (200, 400));
        let (tr_s, te_s) = Preset::C10.sizes(0.25);
        assert_eq!((tr_s, te_s), (50, 100));
        // Even absurdly small scales keep one sample per class.
        let (tr_min, _) = Preset::C100.sizes(0.001);
        assert!(tr_min >= 100);
        let _ = te_s;
    }

    #[test]
    fn load_produces_balanced_split() {
        let (train, test) = Preset::C10.load(0.1);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 40);
        assert_eq!(train.classes, 10);
        assert!(train.images.is_finite());
        assert_ne!(train.images, test.images);
    }

    #[test]
    fn presets_are_mutually_distinct() {
        let a = Preset::C10.load(0.05).0;
        let b = Preset::C100.load(0.05).0;
        assert_ne!(a.classes, b.classes);
        assert_ne!(a.images.dims(), Preset::In50.load(0.05).0.images.dims());
    }
}
