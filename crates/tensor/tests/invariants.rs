//! Deterministic seeded-loop tests for tensor invariants.
//!
//! Formerly a proptest suite; rewritten as explicit seeded loops over the
//! in-tree [`hero_tensor::rng`] so the workspace tests run with no external
//! dependencies. Each case count and seed is fixed, so failures reproduce
//! exactly.

use hero_tensor::rng::{Rng, StdRng};
use hero_tensor::{global_norm_l2, ConvGeometry, Shape, Tensor};

/// Draws a small shape (rank 1..=4, dims 1..=6).
fn small_shape(rng: &mut StdRng) -> Vec<usize> {
    let rank = rng.gen_range(1..=4usize);
    (0..rank).map(|_| rng.gen_range(1..=6usize)).collect()
}

/// Draws a tensor of the given shape filled with values in [-100, 100).
fn tensor_of(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-100.0f32..100.0)).collect();
    Tensor::from_vec(data, dims.to_vec()).unwrap()
}

fn arb_tensor(rng: &mut StdRng) -> Tensor {
    let dims = small_shape(rng);
    tensor_of(rng, &dims)
}

#[test]
fn offset_unravel_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x0FF5E7);
    for _ in 0..64 {
        let shape = Shape::new(small_shape(&mut rng));
        let flat = rng.gen_range(0..1000usize) % shape.numel();
        let idx = shape.unravel(flat);
        assert_eq!(shape.offset(&idx).unwrap(), flat);
    }
}

#[test]
fn add_is_commutative() {
    let mut rng = StdRng::seed_from_u64(0xADD);
    for _ in 0..32 {
        let t = arb_tensor(&mut rng);
        let u = t.map(|v| v * 0.5 - 1.0);
        assert_eq!(t.add(&u).unwrap(), u.add(&t).unwrap());
    }
}

#[test]
fn sub_then_add_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0x5B);
    for _ in 0..32 {
        let t = arb_tensor(&mut rng);
        let u = t.map(|v| v * 0.25 + 2.0);
        let back = t.sub(&u).unwrap().add(&u).unwrap();
        for (a, b) in back.data().iter().zip(t.data()) {
            assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }
}

#[test]
fn norm_inequality_chain() {
    let mut rng = StdRng::seed_from_u64(0x90);
    for _ in 0..32 {
        let t = arb_tensor(&mut rng);
        // ||x||_inf <= ||x||_2 <= ||x||_1 <= sqrt(n) ||x||_2
        let eps = 1e-2;
        assert!(t.norm_linf() <= t.norm_l2() + eps);
        assert!(t.norm_l2() <= t.norm_l1() + eps);
        assert!(t.norm_l1() <= (t.numel() as f32).sqrt() * t.norm_l2() + eps);
    }
}

#[test]
fn triangle_inequality_l2() {
    let mut rng = StdRng::seed_from_u64(0x741A);
    for _ in 0..32 {
        let t = arb_tensor(&mut rng);
        let u = t.map(|v| 3.0 - v * 0.5);
        let s = t.add(&u).unwrap();
        assert!(s.norm_l2() <= t.norm_l2() + u.norm_l2() + 1e-2);
    }
}

#[test]
fn reshape_preserves_sum() {
    let mut rng = StdRng::seed_from_u64(0x4E5);
    for _ in 0..32 {
        let t = arb_tensor(&mut rng);
        let flat = t.flatten();
        assert_eq!(flat.sum(), t.sum());
        assert_eq!(flat.numel(), t.numel());
    }
}

#[test]
fn matmul_distributes_over_addition() {
    let mut rng = StdRng::seed_from_u64(0xD157);
    for _ in 0..64 {
        let (m, k, n) = (
            rng.gen_range(1..5usize),
            rng.gen_range(1..5usize),
            rng.gen_range(1..5usize),
        );
        let seed = rng.gen_range(0..1000u64);
        // (A)(B + C) == AB + AC
        let f = |s: u64, r: usize, c: usize| {
            Tensor::from_fn([r, c], |i| {
                (((i[0] * 31 + i[1] * 17) as u64 + s) % 13) as f32 - 6.0
            })
        };
        let a = f(seed, m, k);
        let b = f(seed + 1, k, n);
        let c = f(seed + 2, k, n);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-3);
        }
    }
}

#[test]
fn matmul_transpose_identity() {
    let mut rng = StdRng::seed_from_u64(0x7A45);
    for _ in 0..64 {
        let (m, k, n) = (
            rng.gen_range(1..5usize),
            rng.gen_range(1..5usize),
            rng.gen_range(1..5usize),
        );
        let seed = rng.gen_range(0..100u64);
        // (AB)^T == B^T A^T
        let f = |s: u64, r: usize, c: usize| {
            Tensor::from_fn([r, c], |i| {
                (((i[0] * 7 + i[1] * 3) as u64 + s) % 11) as f32 - 5.0
            })
        };
        let a = f(seed, m, k);
        let b = f(seed + 5, k, n);
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b
            .transpose()
            .unwrap()
            .matmul(&a.transpose().unwrap())
            .unwrap();
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn softmax_rows_is_probability_distribution() {
    let mut rng = StdRng::seed_from_u64(0x50F7);
    for _ in 0..32 {
        let rows = rng.gen_range(1..5usize);
        let cols = rng.gen_range(1..6usize);
        let seed = rng.gen_range(0..100u64);
        let t = Tensor::from_fn([rows, cols], |i| {
            (((i[0] * 13 + i[1] * 7) as u64 + seed) % 19) as f32 - 9.0
        });
        let s = t.softmax_rows().unwrap();
        for r in 0..rows {
            let row = &s.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn im2col_col2im_adjoint() {
    let mut rng = StdRng::seed_from_u64(0x12C);
    let mut cases = 0;
    while cases < 32 {
        let hw = rng.gen_range(3..7usize);
        let k = rng.gen_range(1..4usize);
        let stride = rng.gen_range(1..3usize);
        let pad = rng.gen_range(0..2usize);
        let seed = rng.gen_range(0..50u64);
        if k > hw + 2 * pad {
            continue;
        }
        cases += 1;
        let geom = ConvGeometry::new(hw, hw, k, stride, pad).unwrap();
        let x = Tensor::from_fn([1, 2, hw, hw], |i| {
            ((i.iter().sum::<usize>() as u64 + seed) % 9) as f32 - 4.0
        });
        let cols = x.im2col(&geom).unwrap();
        let y = Tensor::from_fn([cols.dims()[0], cols.dims()[1]], |i| {
            (((i[0] * 3 + i[1] * 5) as u64 + seed) % 7) as f32 - 3.0
        });
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&y.col2im(&geom, 1, 2).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()));
    }
}

#[test]
fn pad_crop_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xBADC);
    for _ in 0..32 {
        let n = rng.gen_range(1..3usize);
        let c = rng.gen_range(1..3usize);
        let hw = rng.gen_range(1..5usize);
        let pad = rng.gen_range(0..3usize);
        let t = Tensor::from_fn([n, c, hw, hw], |i| i.iter().sum::<usize>() as f32);
        let roundtrip = t.pad2d(pad).unwrap().crop2d(pad).unwrap();
        assert_eq!(roundtrip, t);
    }
}

#[test]
fn global_norm_matches_concat() {
    let mut rng = StdRng::seed_from_u64(0x6106);
    for _ in 0..32 {
        let a = arb_tensor(&mut rng);
        let b = arb_tensor(&mut rng);
        let concat_sq = a.norm_l2_sq() + b.norm_l2_sq();
        let g = global_norm_l2(&[a, b]);
        assert!((g * g - concat_sq).abs() < 1e-1 * (1.0 + concat_sq));
    }
}

#[test]
fn broadcast_reduce_adjoint() {
    let mut rng = StdRng::seed_from_u64(0xB4D);
    for _ in 0..32 {
        let rows = rng.gen_range(1..5usize);
        let cols = rng.gen_range(1..5usize);
        let seed = rng.gen_range(0..100u64);
        // <broadcast(x), y> == <x, reduce(y)>
        let x = Tensor::from_fn([cols], |i| ((i[0] as u64 + seed) % 5) as f32 - 2.0);
        let y = Tensor::from_fn([rows, cols], |i| {
            (((i[0] * 3 + i[1]) as u64 + seed) % 7) as f32 - 3.0
        });
        let bx = Tensor::zeros([rows, cols]).badd(&x).unwrap();
        let lhs = bx.dot(&y).unwrap();
        let rhs = x.dot(&y.reduce_to_shape(x.shape()).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }
}
