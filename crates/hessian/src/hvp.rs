//! Finite-difference Hessian-vector products.
//!
//! HERO's regularizer gradient (Eq. 16) is `2·H(W′)·(∇L(W′) − g)` — a
//! Hessian-vector product. The paper computes it with double
//! backpropagation; this reproduction uses the standard finite-difference
//! estimate `H·v ≈ (∇L(W + ε·v̂) − ∇L(W)) · ‖v‖ / ε`, which costs one extra
//! gradient evaluation (the same cost profile) and avoids needing
//! higher-order autodiff. See DESIGN.md §1 for the substitution note.

use hero_tensor::{global_norm_l2, pool, Result, Tensor, TensorError};

/// A differentiable objective over a list of parameter tensors.
///
/// Implementations return the loss value and the gradient with respect to
/// every parameter (canonical order). This is the only interface the
/// curvature tools need, keeping them independent of any model type.
pub trait GradOracle {
    /// Evaluates loss and gradients at `params`.
    ///
    /// # Errors
    ///
    /// Returns an error if `params` has the wrong arity or shapes.
    fn grad(&mut self, params: &[Tensor]) -> Result<(f32, Vec<Tensor>)>;
}

impl<F> GradOracle for F
where
    F: FnMut(&[Tensor]) -> Result<(f32, Vec<Tensor>)>,
{
    fn grad(&mut self, params: &[Tensor]) -> Result<(f32, Vec<Tensor>)> {
        self(params)
    }
}

/// Adds `scale * v` to a copy of `params`.
///
/// # Errors
///
/// Returns a shape error if the lists are misaligned.
pub fn perturbed(params: &[Tensor], v: &[Tensor], scale: f32) -> Result<Vec<Tensor>> {
    let mut out = Vec::with_capacity(params.len());
    perturbed_into(params, v, scale, &mut out)?;
    Ok(out)
}

/// In-place [`perturbed`]: writes `params + scale * v` into `out`, reusing
/// `out`'s buffers when its shapes already match (the steady-state case in
/// HERO's step loop, where the same workspace is passed every step).
///
/// # Errors
///
/// Returns a shape error if the lists are misaligned.
pub fn perturbed_into(
    params: &[Tensor],
    v: &[Tensor],
    scale: f32,
    out: &mut Vec<Tensor>,
) -> Result<()> {
    if params.len() != v.len() {
        return Err(TensorError::InvalidArgument(format!(
            "{} parameter tensors but {} direction tensors",
            params.len(),
            v.len()
        )));
    }
    let reuse =
        out.len() == params.len() && out.iter().zip(params).all(|(o, p)| o.shape() == p.shape());
    if reuse {
        for (o, p) in out.iter_mut().zip(params) {
            o.copy_from(p)?;
        }
    } else {
        out.clear();
        out.extend(params.iter().cloned());
    }
    for (o, d) in out.iter_mut().zip(v) {
        o.axpy(scale, d)?;
    }
    Ok(())
}

/// Finite-difference Hessian-vector product at `params` along `v`.
///
/// `base_grad` must be the gradient already evaluated at `params` (callers
/// always have it; passing it avoids a redundant backprop). `eps` is the
/// normalized step size. Returns `H·v` with the same shapes as `params`.
///
/// A zero `v` returns zeros without evaluating the oracle.
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn fd_hvp(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    base_grad: &[Tensor],
    v: &[Tensor],
    eps: f32,
) -> Result<Vec<Tensor>> {
    let mut shifted = Vec::new();
    let mut out = Vec::new();
    fd_hvp_into(oracle, params, base_grad, v, eps, &mut shifted, &mut out)?;
    for t in shifted.drain(..) {
        pool::recycle_tensor(t);
    }
    Ok(out)
}

/// In-place [`fd_hvp`]: writes `H·v` into `out`, using `shifted` as the
/// workspace for the perturbed parameters. Both vectors are reused across
/// calls — previous contents of `out` are recycled into the scratch pool —
/// so HERO's per-step HVP performs no fresh allocations after warm-up.
///
/// # Errors
///
/// Propagates oracle and shape errors.
pub fn fd_hvp_into(
    oracle: &mut dyn GradOracle,
    params: &[Tensor],
    base_grad: &[Tensor],
    v: &[Tensor],
    eps: f32,
    shifted: &mut Vec<Tensor>,
    out: &mut Vec<Tensor>,
) -> Result<()> {
    let _obs = hero_obs::span("hvp");
    let norm = global_norm_l2(v);
    if norm <= f32::MIN_POSITIVE {
        let reuse = out.len() == v.len() && out.iter().zip(v).all(|(o, t)| o.shape() == t.shape());
        if reuse {
            for o in out.iter_mut() {
                o.data_mut().fill(0.0);
            }
        } else {
            out.clear();
            out.extend(v.iter().map(|t| Tensor::zeros(t.shape().clone())));
        }
        return Ok(());
    }
    let scale = eps / norm;
    perturbed_into(params, v, scale, shifted)?;
    let (_, grad_shifted) = oracle.grad(shifted)?;
    for t in out.drain(..) {
        pool::recycle_tensor(t);
    }
    out.extend(grad_shifted);
    for (o, g0) in out.iter_mut().zip(base_grad) {
        o.axpy(-1.0, g0)?;
        o.scale_in_place(norm / eps);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::Quadratic;

    #[test]
    fn perturbed_adds_scaled_direction() {
        let p = vec![Tensor::ones([2]), Tensor::zeros([3])];
        let v = vec![Tensor::full([2], 2.0), Tensor::ones([3])];
        let out = perturbed(&p, &v, 0.5).unwrap();
        assert_eq!(out[0].data(), &[2.0, 2.0]);
        assert_eq!(out[1].data(), &[0.5, 0.5, 0.5]);
        assert!(perturbed(&p, &v[..1], 1.0).is_err());
    }

    #[test]
    fn fd_hvp_matches_exact_on_quadratic() {
        // For f(x) = 1/2 x^T A x, the Hessian is exactly A everywhere.
        let q = Quadratic::diag(&[1.0, 4.0, 9.0]);
        let params = vec![Tensor::from_vec(vec![0.3, -0.2, 0.5], [3]).unwrap()];
        let mut oracle = q.oracle();
        let (_, g0) = oracle.grad(&params).unwrap();
        let v = vec![Tensor::from_vec(vec![1.0, 1.0, 1.0], [3]).unwrap()];
        let hv = fd_hvp(&mut oracle, &params, &g0, &v, 1e-3).unwrap();
        // H v = [1, 4, 9]
        for (got, want) in hv[0].data().iter().zip(&[1.0, 4.0, 9.0]) {
            assert!((got - want).abs() < 1e-2, "{got} vs {want}");
        }
    }

    #[test]
    fn fd_hvp_scales_linearly_in_v() {
        let q = Quadratic::diag(&[2.0, 3.0]);
        let params = vec![Tensor::zeros([2])];
        let mut oracle = q.oracle();
        let (_, g0) = oracle.grad(&params).unwrap();
        let v = vec![Tensor::from_vec(vec![1.0, -2.0], [2]).unwrap()];
        let hv = fd_hvp(&mut oracle, &params, &g0, &v, 1e-3).unwrap();
        let v2 = vec![v[0].scale(5.0)];
        let hv2 = fd_hvp(&mut oracle, &params, &g0, &v2, 1e-3).unwrap();
        for (a, b) in hv2[0].data().iter().zip(hv[0].data()) {
            assert!((a - 5.0 * b).abs() < 1e-2);
        }
    }

    #[test]
    fn fd_hvp_of_zero_vector_is_zero_without_oracle_calls() {
        use std::cell::Cell;
        let calls = Cell::new(0usize);
        let mut oracle = |_: &[Tensor]| {
            calls.set(calls.get() + 1);
            Ok((0.0, vec![Tensor::zeros([2])]))
        };
        let params = vec![Tensor::zeros([2])];
        let (_, g0) = GradOracle::grad(&mut oracle, &params).unwrap();
        let v = vec![Tensor::zeros([2])];
        let before = calls.get();
        let hv = fd_hvp(&mut oracle, &params, &g0, &v, 1e-3).unwrap();
        assert_eq!(hv[0].data(), &[0.0, 0.0]);
        assert_eq!(calls.get(), before);
    }

    #[test]
    fn fd_hvp_multi_tensor_params() {
        // Two parameter tensors forming a block-diagonal quadratic.
        let q = Quadratic::diag(&[1.0, 2.0, 3.0, 4.0]);
        let mut oracle = move |ps: &[Tensor]| {
            // Concatenate blocks, evaluate, split back.
            let flat: Vec<f32> = ps.iter().flat_map(|t| t.data().iter().copied()).collect();
            let x = vec![Tensor::from_vec(flat, [4])?];
            let (l, g) = q.oracle().grad(&x)?;
            let gd = g[0].data();
            Ok((
                l,
                vec![
                    Tensor::from_vec(gd[..2].to_vec(), [2])?,
                    Tensor::from_vec(gd[2..].to_vec(), [2])?,
                ],
            ))
        };
        let params = vec![Tensor::zeros([2]), Tensor::zeros([2])];
        let (_, g0) = GradOracle::grad(&mut oracle, &params).unwrap();
        let v = vec![Tensor::ones([2]), Tensor::ones([2])];
        let hv = fd_hvp(&mut oracle, &params, &g0, &v, 1e-3).unwrap();
        assert!((hv[0].data()[0] - 1.0).abs() < 1e-2);
        assert!((hv[0].data()[1] - 2.0).abs() < 1e-2);
        assert!((hv[1].data()[0] - 3.0).abs() < 1e-2);
        assert!((hv[1].data()[1] - 4.0).abs() < 1e-2);
    }
}
