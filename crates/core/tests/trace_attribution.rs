//! End-to-end span-attribution check: with the tracer enabled, a short
//! training run must attribute at least 90% of `train_step` wall-clock to
//! named child phases, and the phase tree must contain every span the
//! training loop is instrumented with.
//!
//! Lives in its own integration-test binary because the tracer state is
//! process-global; unit tests elsewhere in the workspace must not see the
//! spans this run records.

use hero_core::experiment::{model_config, MethodKind};
use hero_core::{train, TrainConfig};
use hero_data::Preset;
use hero_nn::models::ModelKind;
use hero_tensor::rng::StdRng;

#[test]
fn named_phases_cover_ninety_percent_of_train_step() {
    hero_obs::enable();
    hero_obs::span::reset();
    let (train_set, test_set) = Preset::C10.load(0.1);
    let mut net = ModelKind::Resnet.build(model_config(Preset::C10), &mut StdRng::seed_from_u64(0));
    let config = TrainConfig::new(MethodKind::Hero.tuned(), 1).with_seed(0);
    train(&mut net, &train_set, &test_set, &config).expect("training");
    hero_obs::disable();

    let rows = hero_obs::summary_rows();
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    for expected in [
        "epoch",
        "train_step",
        "sync",
        "forward",
        "backward",
        "perturb",
        "hvp",
        "apply",
        "eval",
    ] {
        assert!(names.contains(&expected), "missing span `{expected}`");
    }

    let coverage = hero_obs::child_coverage(&rows, "train_step");
    assert!(
        coverage >= 0.9,
        "named child spans cover only {:.1}% of train_step wall-clock",
        100.0 * coverage
    );
}
