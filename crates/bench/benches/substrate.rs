//! Substrate micro-benchmarks: the tensor/autodiff primitives the whole
//! reproduction stands on (matmul, im2col convolution, dataset generation,
//! landscape scanning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hero_autodiff::Graph;
use hero_data::{SynthGenerator, SynthSpec};
use hero_landscape::{filter_normalized_direction, scan_2d};
use hero_tensor::{ConvGeometry, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let a = Tensor::from_fn([n, n], |i| ((i[0] * 7 + i[1]) % 13) as f32 - 6.0);
        let b = Tensor::from_fn([n, n], |i| ((i[0] + i[1] * 5) % 11) as f32 - 5.0);
        group.bench_function(BenchmarkId::from_parameter(n), |bench| {
            bench.iter(|| a.matmul(&b).unwrap())
        });
    }
    group.finish();
}

fn bench_conv_forward_backward(c: &mut Criterion) {
    let x = Tensor::from_fn([8, 8, 8, 8], |i| (i.iter().sum::<usize>() % 7) as f32 * 0.2);
    let w = Tensor::from_fn([16, 8 * 9], |i| ((i[0] + i[1]) % 5) as f32 * 0.1 - 0.2);
    c.bench_function("conv2d_fwd_bwd_8x8x8x8", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let wv = g.input(w.clone());
            let geom = ConvGeometry::new(8, 8, 3, 1, 1).unwrap();
            let y = g.conv2d(xv, wv, geom).unwrap();
            let sq = g.square(y);
            let loss = g.sum(sq);
            g.backward(loss).unwrap()
        })
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    c.bench_function("synth_generate_200", |b| {
        let gen = SynthGenerator::new(SynthSpec::default());
        b.iter(|| gen.generate(200, 1))
    });
}

fn bench_landscape_scan(c: &mut Criterion) {
    // A quadratic-surface scan: measures grid-evaluation machinery.
    let params = vec![Tensor::from_fn([256], |i| (i[0] as f32 * 0.01).sin())];
    let mut rng = StdRng::seed_from_u64(0);
    let d1 = filter_normalized_direction(&params, &mut rng).unwrap();
    let d2 = filter_normalized_direction(&params, &mut rng).unwrap();
    c.bench_function("scan_2d_quadratic_17x17", |b| {
        b.iter(|| {
            let mut oracle = |ps: &[Tensor]| Ok(ps[0].norm_l2_sq());
            scan_2d(&mut oracle, &params, &d1, &d2, 1.0, 17).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv_forward_backward,
    bench_dataset_generation,
    bench_landscape_scan
);
criterion_main!(benches);
