//! Certified static sensitivity: per-layer, per-bit-width bounds on the
//! end-to-end loss perturbation caused by quantizing that one layer.
//!
//! The matrix is *plain data* — `hero-quant` stays independent of the
//! analyzer. `hero-core` fills it from `hero-analyze`'s quantization-noise
//! pass (one forward error propagation per `(layer, bits)` cell seeding
//! `‖δW‖∞ ≤ Δ(bits)/2` on that layer alone) and hands it to
//! [`SensitivityMatrix::allocate`], replacing the `curvature = 1`
//! placeholder of [`crate::network_sensitivities`] with a sound bound.
//!
//! Each cell is clamped by the first-order certificate
//! `|δL| ≤ ĝ · n · Δ/2` (with `ĝ` the analyzer's per-element gradient
//! bound), whichever is tighter — the noise pass is exact-identity-based
//! and usually wins at low bits, the gradient bound at high bits where
//! its linearity matches the shrinking perturbation.

use crate::mixed::{greedy_allocate, LayerSensitivity};
use crate::scheme::QuantScheme;
use hero_tensor::{Result, TensorError};

/// One layer's certified sensitivity profile.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticSensitivity {
    /// Parameter tensor name, aligned with the network's quantizable order.
    pub name: String,
    /// Number of weights in the layer.
    pub numel: usize,
    /// Maximum absolute weight (determines Δ at a given bit width).
    pub max_abs: f32,
    /// Certified per-element bound on `|∂L/∂w|` for this layer from the
    /// analyzer's gradient-scale pass; `f32::INFINITY` when unavailable.
    pub grad_bound: f32,
    /// Certified end-to-end loss error bound per grid bit width, aligned
    /// with [`SensitivityMatrix::bits`]. Entry `k` bounds `|L(W + δ) − L(W)|`
    /// over all `‖δ‖∞ ≤ Δ(bits[k])/2` perturbations of this layer alone.
    pub err: Vec<f32>,
    /// The plain interval-domain bound per grid bit width, before the
    /// relational (zonotope) tightening that produces [`Self::err`].
    /// Kept for domain-tightness reporting (`err[k] ≤ err_interval[k]`
    /// holds cell-wise); may be empty when only one domain was run.
    pub err_interval: Vec<f32>,
}

impl StaticSensitivity {
    /// Bin width of a symmetric min-max quantizer at `bits`.
    pub fn delta(&self, bits: u8) -> f32 {
        self.max_abs / QuantScheme::half_levels(bits) as f32
    }

    /// First-order certificate `ĝ · n · Δ(bits) / 2` (ℓ1-from-ℓ∞), or
    /// `+∞` when no gradient bound is known.
    pub fn first_order(&self, bits: u8) -> f32 {
        self.grad_bound * self.numel as f32 * self.delta(bits) / 2.0
    }
}

/// Certified static sensitivity matrix `err[layer][bits]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SensitivityMatrix {
    /// Strictly increasing bit-width grid the `err` columns were
    /// certified at.
    pub bits: Vec<u8>,
    /// One profile per quantizable layer, in network parameter order.
    pub layers: Vec<StaticSensitivity>,
}

impl SensitivityMatrix {
    /// Validates grid/profiles alignment. Call after hand-assembly.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty or
    /// non-increasing grid, widths outside `1..=16`, or a layer whose
    /// `err` row does not match the grid length.
    pub fn validate(&self) -> Result<()> {
        if self.bits.is_empty() || !self.bits.windows(2).all(|w| w[0] < w[1]) {
            return Err(TensorError::InvalidArgument(
                "sensitivity grid must be non-empty and strictly increasing".into(),
            ));
        }
        for &b in &self.bits {
            QuantScheme::symmetric(b)?;
        }
        for l in &self.layers {
            if l.err.len() != self.bits.len() {
                return Err(TensorError::InvalidArgument(format!(
                    "layer {}: {} err entries for a {}-point grid",
                    l.name,
                    l.err.len(),
                    self.bits.len()
                )));
            }
            if !l.err_interval.is_empty() && l.err_interval.len() != self.bits.len() {
                return Err(TensorError::InvalidArgument(format!(
                    "layer {}: {} err_interval entries for a {}-point grid",
                    l.name,
                    l.err_interval.len(),
                    self.bits.len()
                )));
            }
        }
        Ok(())
    }

    /// Certified (or certificate-extrapolated) loss impact of quantizing
    /// `layer` at `bits`: the grid cell when `bits` is on the grid,
    /// otherwise an *outward-rounded* Δ-linear rescale of the sampled
    /// cells — always clamped by the layer's first-order certificate.
    ///
    /// Off-grid the error curve's shape between samples is unknown: it
    /// is superlinear in Δ where higher-order terms dominate, and
    /// *sublinear* where the loss-interval ceiling saturates (there a
    /// down-rescale from the coarser cell badly under-reports — both
    /// cells sit at the cap, yet the linear estimate halves). Between
    /// two sampled cells the rescale therefore takes the worse (larger)
    /// of the two neighbours' linear extrapolations, covering both
    /// regimes; beyond the grid ends only one neighbour exists. The
    /// result is widened by a relative margin in `f64` and is never
    /// smaller than the single-neighbour estimate it replaces.
    pub fn impact(&self, layer: usize, bits: u8) -> f32 {
        let l = &self.layers[layer];
        let certified = match self.bits.binary_search(&bits) {
            Ok(k) => l.err[k],
            Err(ins) => {
                let rescale = |k: usize| -> f64 {
                    let from = f64::from(l.delta(self.bits[k])).max(f64::from(f32::MIN_POSITIVE));
                    f64::from(l.err[k]) * f64::from(l.delta(bits)) / from
                };
                let below = ins.checked_sub(1).map(rescale);
                let above = (ins < self.bits.len()).then(|| rescale(ins));
                let worst = match (below, above) {
                    (Some(a), Some(b)) => a.max(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => f64::INFINITY,
                };
                (worst * (1.0 + 1e-4)) as f32
            }
        };
        certified.min(l.first_order(bits))
    }

    /// Greedy mixed-precision allocation over the certified impacts:
    /// distributes `avg_bits × Σ numel` weight-bits within
    /// `[min_bits, max_bits]`. Same budget semantics (and the same
    /// monotone-in-budget guarantee) as [`crate::allocate_bits`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an invalid matrix
    /// (see [`SensitivityMatrix::validate`]), invalid bounds, or an
    /// infeasible budget.
    pub fn allocate(&self, avg_bits: f32, min_bits: u8, max_bits: u8) -> Result<Vec<u8>> {
        self.validate()?;
        let numels: Vec<usize> = self.layers.iter().map(|l| l.numel).collect();
        let profiles: Vec<Vec<f32>> = (0..self.layers.len())
            .map(|i| {
                (min_bits..=max_bits.max(min_bits))
                    .map(|b| self.impact(i, b))
                    .collect()
            })
            .collect();
        greedy_allocate(&numels, &profiles, avg_bits, min_bits, max_bits)
    }

    /// Projects the matrix onto the quadratic-model
    /// [`LayerSensitivity`] interface by inverting
    /// `err = curvature · n · Δ²/24` at the grid's middle bit width —
    /// for callers (reports, plots) that speak the proxy vocabulary.
    pub fn to_layer_sensitivities(&self) -> Vec<LayerSensitivity> {
        let k = self.bits.len() / 2;
        self.layers
            .iter()
            .map(|l| {
                let d = self.bits.get(k).map_or(f32::MIN_POSITIVE, |&b| l.delta(b));
                let err = l.err.get(k).copied().unwrap_or(0.0);
                let curvature = if d > 0.0 && l.numel > 0 {
                    24.0 * err / (l.numel as f32 * d * d)
                } else {
                    0.0
                };
                LayerSensitivity {
                    name: l.name.clone(),
                    numel: l.numel,
                    max_abs: l.max_abs,
                    curvature,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> SensitivityMatrix {
        SensitivityMatrix {
            bits: vec![2, 4, 8],
            layers: vec![
                StaticSensitivity {
                    name: "fragile".into(),
                    numel: 100,
                    max_abs: 1.0,
                    grad_bound: f32::INFINITY,
                    err: vec![8.0, 1.6, 0.09],
                    err_interval: vec![16.0, 3.2, 0.18],
                },
                StaticSensitivity {
                    name: "robust".into(),
                    numel: 100,
                    max_abs: 1.0,
                    grad_bound: f32::INFINITY,
                    err: vec![0.08, 0.016, 0.0009],
                    err_interval: vec![],
                },
            ],
        }
    }

    #[test]
    fn validate_catches_malformed_matrices() {
        assert!(matrix().validate().is_ok());
        let mut m = matrix();
        m.bits = vec![4, 4];
        assert!(m.validate().is_err());
        let mut m = matrix();
        m.bits = vec![2, 4, 32];
        assert!(m.validate().is_err());
        let mut m = matrix();
        m.layers[0].err.pop();
        assert!(m.validate().is_err());
        assert!(SensitivityMatrix::default().validate().is_err());
    }

    #[test]
    fn impact_reads_grid_and_extrapolates_off_grid() {
        let m = matrix();
        assert_eq!(m.impact(0, 4), 1.6);
        // Off-grid 6 bits: the worse of the two neighbours' Δ-linear
        // rescalings, rounded outward — never below either estimate.
        let down = 1.6 * (m.layers[0].delta(6) / m.layers[0].delta(4));
        let up = 0.09 * (m.layers[0].delta(6) / m.layers[0].delta(8));
        assert!(m.impact(0, 6) >= down.max(up));
        assert!(m.impact(0, 6) <= down.max(up) * 1.001);
        // Between grid points, rescaled up from the cell below.
        assert!(m.impact(0, 3) > m.impact(0, 4));
        // Below the grid: 1- and 2-bit symmetric grids share Δ
        // (half_levels saturates at 1), so the bound is merely not worse.
        assert!(m.impact(0, 1) >= m.impact(0, 2));
    }

    #[test]
    fn off_grid_rescale_rounds_outward_in_the_saturated_regime() {
        // Both sampled cells sit at the CE-loss ceiling: the true error
        // at 3 bits is plausibly still the ceiling, so the old
        // below-neighbour linear rescale (≈ cap·Δ(3)/Δ(2) ≈ cap/3)
        // under-reported it. Outward rounding must keep the estimate at
        // or above the ceiling.
        let cap = 27.66f32;
        let m = SensitivityMatrix {
            bits: vec![2, 4],
            layers: vec![StaticSensitivity {
                name: "saturated".into(),
                numel: 10,
                max_abs: 1.0,
                grad_bound: f32::INFINITY,
                err: vec![cap, cap],
                err_interval: vec![],
            }],
        };
        let old_estimate = cap * (m.layers[0].delta(3) / m.layers[0].delta(2));
        assert!(old_estimate < cap * 0.5, "premise: old rescale halves");
        assert!(m.impact(0, 3) >= cap, "outward rescale must cover the cap");
        // And it is never weaker than the estimate it replaced.
        assert!(m.impact(0, 3) >= old_estimate);
    }

    #[test]
    fn first_order_certificate_clamps_loose_cells() {
        let mut m = matrix();
        m.layers[0].grad_bound = 1e-6; // certifiably flat layer
        assert!(m.impact(0, 4) <= m.layers[0].first_order(4));
        assert!(m.impact(0, 4) < 1.6);
    }

    #[test]
    fn allocate_favors_the_certified_fragile_layer() {
        let m = matrix();
        let bits = m.allocate(5.0, 2, 8).unwrap();
        assert!(
            bits[0] > bits[1],
            "fragile {} vs robust {}",
            bits[0],
            bits[1]
        );
        let spent: usize = m
            .layers
            .iter()
            .zip(&bits)
            .map(|(l, &b)| l.numel * usize::from(b))
            .sum();
        assert!(spent <= (5.0 * 200.0) as usize);
    }

    #[test]
    fn projection_orders_layers_by_certified_error() {
        let sens = matrix().to_layer_sensitivities();
        assert_eq!(sens.len(), 2);
        assert!(sens[0].curvature > sens[1].curvature);
        assert!(sens.iter().all(|s| s.curvature >= 0.0));
    }
}
