//! Conversions between live training state and the on-disk model
//! artifact format (`hero-artifact`, DESIGN.md §16).
//!
//! `hero-artifact` defines the byte format over plain data; this module
//! owns the semantics: how a [`Network`], a [`TrainConfig`], a
//! [`TrainerState`] and provenance map onto artifact sections, and how a
//! loaded artifact is turned back into an identical model. Everything is
//! deterministic: meta keys are written in one fixed order and tensors in
//! the network's canonical parameter order, so the same run always
//! produces byte-identical files.
//!
//! The pipeline built on top:
//!
//! ```text
//! hero train --save model.ha          # train_to_artifact
//!   └─ --checkpoint-every N           # resumable epoch checkpoints
//! hero preflight --artifact model.ha  # network_from_artifact
//! hero quantize --artifact model.ha   # network_from_artifact + attach_quant
//! ```

use crate::config::TrainConfig;
use crate::metrics::{EpochMetrics, TrainRecord};
use crate::spectrum::{LayerTrace, SpectrumProbe};
use crate::trainer::{train_resumable, TrainerState};
use hero_artifact::{
    Artifact, ArtifactError, Estimate as ArtEstimate, LayerTraceRow, MetaValue, MetricsRow,
    QuantEntry, ResumeState, SpectrumRow, StateEntry, TensorEntry,
};
use hero_data::{Augment, Dataset};
use hero_hessian::Estimate;
use hero_nn::models::{mlp, ModelConfig, ModelKind};
use hero_nn::{Network, ParamKind};
use hero_optim::Method;
use hero_tensor::rng::StdRng;
use hero_tensor::{Result, Tensor, TensorError};
use std::path::Path;

/// Value of the `format` meta key every artifact written here carries.
pub const FORMAT_NAME: &str = "hero-artifact";

/// Which architecture an artifact's weights belong to — everything needed
/// to rebuild the module tree before overwriting its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSpec {
    /// A flatten + hidden-layers MLP ([`mlp`]), by hidden widths.
    Mlp(Vec<usize>),
    /// One of the paper's convolutional stand-ins.
    Kind(ModelKind),
}

impl ModelSpec {
    fn kind_name(&self) -> String {
        match self {
            ModelSpec::Mlp(_) => "mlp".to_string(),
            ModelSpec::Kind(ModelKind::Resnet) => "resnet".to_string(),
            ModelSpec::Kind(ModelKind::Mobilenet) => "mobilenet".to_string(),
            ModelSpec::Kind(ModelKind::Vgg) => "vgg".to_string(),
        }
    }

    /// Builds a fresh network of this architecture. The initialization
    /// draws are irrelevant to artifact loading — every parameter and
    /// state buffer is overwritten — so a fixed RNG is used.
    pub fn build(&self, cfg: ModelConfig) -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        match self {
            ModelSpec::Mlp(hidden) => mlp(cfg, hidden, &mut rng),
            ModelSpec::Kind(kind) => kind.build(cfg, &mut rng),
        }
    }
}

/// Run identity and provenance written into (and read back from) an
/// artifact's META section.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Architecture of the serialized weights.
    pub model: ModelSpec,
    /// Model shape configuration.
    pub model_cfg: ModelConfig,
    /// The full training configuration (provenance *and* the recipe a
    /// checkpoint resume continues under).
    pub config: TrainConfig,
    /// Git revision of the code that produced the artifact (or a fixed
    /// label like `"golden"` for committed fixtures).
    pub git_rev: String,
    /// FNV-1a64 hash of the rendered preflight report, when one gated the
    /// run (see [`preflight_hash`]).
    pub preflight_hash: Option<u64>,
}

/// Hash of a rendered preflight report, stored as provenance so an
/// artifact records which static-analysis verdict its training run passed.
pub fn preflight_hash(report: &hero_analyze::Report) -> u64 {
    hero_artifact::fnv1a64(report.to_string().as_bytes())
}

fn art_err(e: ArtifactError) -> TensorError {
    TensorError::InvalidArgument(e.to_string())
}

fn missing(key: &str) -> TensorError {
    TensorError::InvalidArgument(format!("artifact meta is missing `{key}`"))
}

fn meta_u64(art: &Artifact, key: &str) -> Result<u64> {
    art.meta_u64(key).ok_or_else(|| missing(key))
}

fn meta_f64(art: &Artifact, key: &str) -> Result<f64> {
    art.meta_f64(key).ok_or_else(|| missing(key))
}

fn meta_bool(art: &Artifact, key: &str) -> Result<bool> {
    art.meta_bool(key).ok_or_else(|| missing(key))
}

fn meta_str<'a>(art: &'a Artifact, key: &str) -> Result<&'a str> {
    art.meta_str(key).ok_or_else(|| missing(key))
}

// --- meta section ---------------------------------------------------------

fn write_meta(art: &mut Artifact, meta: &RunMeta) {
    art.set_meta("format", MetaValue::Str(FORMAT_NAME.to_string()));
    art.set_meta("model.kind", MetaValue::Str(meta.model.kind_name()));
    if let ModelSpec::Mlp(hidden) = &meta.model {
        let widths: Vec<String> = hidden.iter().map(usize::to_string).collect();
        art.set_meta("model.hidden", MetaValue::Str(widths.join(",")));
    }
    art.set_meta(
        "model.classes",
        MetaValue::U64(meta.model_cfg.classes as u64),
    );
    art.set_meta(
        "model.in_channels",
        MetaValue::U64(meta.model_cfg.in_channels as u64),
    );
    art.set_meta(
        "model.input_hw",
        MetaValue::U64(meta.model_cfg.input_hw as u64),
    );
    art.set_meta("model.width", MetaValue::U64(meta.model_cfg.width as u64));

    let c = &meta.config;
    let (method_kind, h, gamma, lambda) = match c.method {
        Method::Sgd => ("sgd", 0.0, 0.0, 0.0),
        Method::FirstOrderOnly { h } => ("first_order", h, 0.0, 0.0),
        Method::GradL1 { lambda } => ("grad_l1", 0.0, 0.0, lambda),
        Method::Hero { h, gamma } => ("hero", h, gamma, 0.0),
    };
    art.set_meta("train.method.kind", MetaValue::Str(method_kind.to_string()));
    art.set_meta("train.method.h", MetaValue::F64(f64::from(h)));
    art.set_meta("train.method.gamma", MetaValue::F64(f64::from(gamma)));
    art.set_meta("train.method.lambda", MetaValue::F64(f64::from(lambda)));
    art.set_meta("train.epochs", MetaValue::U64(c.epochs as u64));
    art.set_meta("train.batch_size", MetaValue::U64(c.batch_size as u64));
    art.set_meta("train.lr", MetaValue::F64(f64::from(c.lr)));
    art.set_meta(
        "train.weight_decay",
        MetaValue::F64(f64::from(c.weight_decay)),
    );
    art.set_meta("train.momentum", MetaValue::F64(f64::from(c.momentum)));
    art.set_meta("train.augment.pad", MetaValue::U64(c.augment.pad as u64));
    art.set_meta("train.augment.hflip", MetaValue::Bool(c.augment.hflip));
    art.set_meta("train.eval_every", MetaValue::U64(c.eval_every as u64));
    art.set_meta("train.probe_every", MetaValue::U64(c.probe_every as u64));
    art.set_meta(
        "train.spectrum_every",
        MetaValue::U64(c.spectrum_every as u64),
    );
    art.set_meta("train.seed", MetaValue::U64(c.seed));
    // The exact worker count is wall-clock only (every count ≥ 1 is
    // bitwise identical), but serial (0) vs sharded (≥ 1) are distinct
    // trajectories — record which one the artifact came from.
    art.set_meta("train.sharded", MetaValue::Bool(c.threads > 0));

    art.set_meta("provenance.git_rev", MetaValue::Str(meta.git_rev.clone()));
    if let Some(h) = meta.preflight_hash {
        art.set_meta("provenance.preflight_hash", MetaValue::U64(h));
    }
}

/// Reads the run identity back out of an artifact's META section.
///
/// The returned config's `threads` field is `1` when the artifact came
/// from a sharded run and `0` for a serial one — any worker count ≥ 1
/// reproduces the sharded trajectory bitwise, so the distinction (not
/// the original count) is what round-trips.
///
/// # Errors
///
/// Returns an error on missing or malformed meta entries.
pub fn run_meta_from_artifact(art: &Artifact) -> Result<RunMeta> {
    match art.meta_str("format") {
        Some(FORMAT_NAME) => {}
        other => {
            return Err(TensorError::InvalidArgument(format!(
                "artifact format is {other:?}, expected `{FORMAT_NAME}`"
            )))
        }
    }
    let model = match meta_str(art, "model.kind")? {
        "mlp" => {
            let hidden = meta_str(art, "model.hidden")?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse::<usize>().map_err(|_| {
                        TensorError::InvalidArgument(format!(
                            "artifact `model.hidden` entry `{s}` is not a width"
                        ))
                    })
                })
                .collect::<Result<Vec<usize>>>()?;
            ModelSpec::Mlp(hidden)
        }
        "resnet" => ModelSpec::Kind(ModelKind::Resnet),
        "mobilenet" => ModelSpec::Kind(ModelKind::Mobilenet),
        "vgg" => ModelSpec::Kind(ModelKind::Vgg),
        other => {
            return Err(TensorError::InvalidArgument(format!(
                "artifact names unknown model kind `{other}`"
            )))
        }
    };
    let model_cfg = ModelConfig {
        classes: meta_u64(art, "model.classes")? as usize,
        in_channels: meta_u64(art, "model.in_channels")? as usize,
        input_hw: meta_u64(art, "model.input_hw")? as usize,
        width: meta_u64(art, "model.width")? as usize,
    };
    let method = match meta_str(art, "train.method.kind")? {
        "sgd" => Method::Sgd,
        "first_order" => Method::FirstOrderOnly {
            h: meta_f64(art, "train.method.h")? as f32,
        },
        "grad_l1" => Method::GradL1 {
            lambda: meta_f64(art, "train.method.lambda")? as f32,
        },
        "hero" => Method::Hero {
            h: meta_f64(art, "train.method.h")? as f32,
            gamma: meta_f64(art, "train.method.gamma")? as f32,
        },
        other => {
            return Err(TensorError::InvalidArgument(format!(
                "artifact names unknown training method `{other}`"
            )))
        }
    };
    let config = TrainConfig {
        method,
        epochs: meta_u64(art, "train.epochs")? as usize,
        batch_size: meta_u64(art, "train.batch_size")? as usize,
        lr: meta_f64(art, "train.lr")? as f32,
        weight_decay: meta_f64(art, "train.weight_decay")? as f32,
        momentum: meta_f64(art, "train.momentum")? as f32,
        augment: Augment {
            pad: meta_u64(art, "train.augment.pad")? as usize,
            hflip: meta_bool(art, "train.augment.hflip")?,
        },
        eval_every: meta_u64(art, "train.eval_every")? as usize,
        probe_every: meta_u64(art, "train.probe_every")? as usize,
        spectrum_every: meta_u64(art, "train.spectrum_every")? as usize,
        seed: meta_u64(art, "train.seed")?,
        threads: usize::from(meta_bool(art, "train.sharded")?),
    };
    Ok(RunMeta {
        model,
        model_cfg,
        config,
        git_rev: meta_str(art, "provenance.git_rev")?.to_string(),
        preflight_hash: art.meta_u64("provenance.preflight_hash"),
    })
}

// --- tensor/state sections ------------------------------------------------

fn param_kind_tag(kind: ParamKind) -> u8 {
    match kind {
        ParamKind::Weight => 0,
        ParamKind::Bias => 1,
        ParamKind::BnGamma => 2,
        ParamKind::BnBeta => 3,
    }
}

fn tensor_entries(net: &Network) -> Vec<TensorEntry> {
    let infos = net.param_infos();
    net.params()
        .into_iter()
        .zip(infos)
        .map(|(t, info)| TensorEntry {
            name: info.name,
            kind: param_kind_tag(info.kind),
            dims: t.dims().iter().map(|&d| d as u64).collect(),
            data: t.data().to_vec(),
        })
        .collect()
}

fn tensors_from_entries(entries: &[TensorEntry]) -> Result<Vec<Tensor>> {
    entries
        .iter()
        .map(|e| {
            let dims: Vec<usize> = e.dims.iter().map(|&d| d as usize).collect();
            Tensor::from_vec(e.data.clone(), dims.as_slice())
        })
        .collect()
}

fn write_model_sections(art: &mut Artifact, net: &Network) {
    art.tensors = tensor_entries(net);
    art.state = net
        .state()
        .into_iter()
        .map(|(name, data)| StateEntry { name, data })
        .collect();
}

/// Rebuilds the serialized network: constructs the architecture named in
/// meta, then overwrites every parameter and batch-norm statistic with
/// the artifact's values. Tensor names are checked against the rebuilt
/// module tree so a renamed or reordered layer fails loudly instead of
/// silently wearing the wrong weights.
///
/// # Errors
///
/// Returns an error on meta/shape/name mismatches.
pub fn network_from_artifact(art: &Artifact) -> Result<Network> {
    let meta = run_meta_from_artifact(art)?;
    let mut net = meta.model.build(meta.model_cfg);
    let infos = net.param_infos();
    if infos.len() != art.tensors.len() {
        return Err(TensorError::InvalidArgument(format!(
            "artifact carries {} tensors, model `{}` has {} parameters",
            art.tensors.len(),
            meta.model.kind_name(),
            infos.len()
        )));
    }
    for (info, entry) in infos.iter().zip(&art.tensors) {
        if info.name != entry.name {
            return Err(TensorError::InvalidArgument(format!(
                "artifact tensor `{}` does not match model parameter `{}`",
                entry.name, info.name
            )));
        }
    }
    let params = tensors_from_entries(&art.tensors)?;
    net.set_params(&params)?;
    let state: Vec<(String, Vec<f32>)> = art
        .state
        .iter()
        .map(|s| (s.name.clone(), s.data.clone()))
        .collect();
    let expected: Vec<String> = net.state().into_iter().map(|(n, _)| n).collect();
    for (have, want) in state.iter().map(|(n, _)| n).zip(&expected) {
        if have != want {
            return Err(TensorError::InvalidArgument(format!(
                "artifact state buffer `{have}` does not match model buffer `{want}`"
            )));
        }
    }
    net.set_state(&state)?;
    hero_obs::counters::ARTIFACT_LOADS.incr();
    Ok(net)
}

// --- resume section -------------------------------------------------------

fn estimate_to_row(e: &Estimate) -> ArtEstimate {
    ArtEstimate {
        mean: e.mean,
        std_error: e.std_error,
        samples: e.samples as u64,
    }
}

fn estimate_from_row(e: &ArtEstimate) -> Estimate {
    Estimate {
        mean: e.mean,
        std_error: e.std_error,
        samples: e.samples as usize,
    }
}

fn spectra_to_rows(spectra: &[SpectrumProbe]) -> Vec<SpectrumRow> {
    spectra
        .iter()
        .map(|s| SpectrumRow {
            epoch: s.epoch as u64,
            lambda_max: estimate_to_row(&s.lambda_max),
            lambda_min: estimate_to_row(&s.lambda_min),
            mean_eigenvalue: estimate_to_row(&s.mean_eigenvalue),
            second_moment: estimate_to_row(&s.second_moment),
            layers: s
                .layers
                .iter()
                .map(|l| LayerTraceRow {
                    name: l.name.clone(),
                    quantizable: l.quantizable,
                    trace: estimate_to_row(&l.trace),
                })
                .collect(),
        })
        .collect()
}

fn spectra_from_rows(rows: &[SpectrumRow]) -> Vec<SpectrumProbe> {
    rows.iter()
        .map(|s| SpectrumProbe {
            epoch: s.epoch as usize,
            lambda_max: estimate_from_row(&s.lambda_max),
            lambda_min: estimate_from_row(&s.lambda_min),
            mean_eigenvalue: estimate_from_row(&s.mean_eigenvalue),
            second_moment: estimate_from_row(&s.second_moment),
            layers: s
                .layers
                .iter()
                .map(|l| LayerTrace {
                    name: l.name.clone(),
                    quantizable: l.quantizable,
                    trace: estimate_from_row(&l.trace),
                })
                .collect(),
        })
        .collect()
}

fn resume_section(net: &Network, state: &TrainerState) -> ResumeState {
    let infos = net.param_infos();
    ResumeState {
        next_epoch: state.next_epoch as u64,
        step: state.step as u64,
        grad_evals: state.grad_evals as u64,
        loader_rng: state.loader_rng,
        aug_rng: state.aug_rng,
        momentum: state
            .momentum
            .iter()
            .zip(&infos)
            .map(|(t, info)| TensorEntry {
                name: info.name.clone(),
                kind: param_kind_tag(info.kind),
                dims: t.dims().iter().map(|&d| d as u64).collect(),
                data: t.data().to_vec(),
            })
            .collect(),
        metrics: state
            .epochs
            .iter()
            .map(|m| MetricsRow {
                epoch: m.epoch as u64,
                train_loss: m.train_loss,
                train_acc: m.train_acc,
                test_acc: m.test_acc,
                hessian_norm: m.hessian_norm,
                regularizer: m.regularizer,
            })
            .collect(),
        final_train_acc: state.final_train_acc,
        final_test_acc: state.final_test_acc,
        spectra: spectra_to_rows(&state.spectra),
    }
}

/// Extracts the trainer-side snapshot from an artifact's RESUME section,
/// if present.
///
/// # Errors
///
/// Returns an error if momentum tensors fail to reconstruct.
pub fn trainer_state_from_artifact(art: &Artifact) -> Result<Option<TrainerState>> {
    let Some(r) = &art.resume else {
        return Ok(None);
    };
    Ok(Some(TrainerState {
        next_epoch: r.next_epoch as usize,
        step: r.step as usize,
        grad_evals: r.grad_evals as usize,
        loader_rng: r.loader_rng,
        aug_rng: r.aug_rng,
        momentum: tensors_from_entries(&r.momentum)?,
        epochs: r
            .metrics
            .iter()
            .map(|m| EpochMetrics {
                epoch: m.epoch as usize,
                train_loss: m.train_loss,
                train_acc: m.train_acc,
                test_acc: m.test_acc,
                hessian_norm: m.hessian_norm,
                regularizer: m.regularizer,
            })
            .collect(),
        final_train_acc: r.final_train_acc,
        final_test_acc: r.final_test_acc,
        spectra: spectra_from_rows(&r.spectra),
    }))
}

/// Reconstructs the [`TrainRecord`] of the run that produced an artifact
/// (final saves carry the full history in their RESUME section).
///
/// # Errors
///
/// Returns an error when the artifact has no RESUME section or its meta
/// is malformed.
pub fn record_from_artifact(art: &Artifact) -> Result<TrainRecord> {
    let meta = run_meta_from_artifact(art)?;
    let state = trainer_state_from_artifact(art)?.ok_or_else(|| {
        TensorError::InvalidArgument(
            "artifact carries no training history (RESUME section missing)".to_string(),
        )
    })?;
    Ok(TrainRecord {
        method: meta.config.method.name().to_string(),
        epochs: state.epochs,
        final_test_acc: state.final_test_acc,
        final_train_acc: state.final_train_acc,
        grad_evals: state.grad_evals,
        spectra: state.spectra,
    })
}

// --- artifact assembly ----------------------------------------------------

/// Builds a model artifact: META provenance, parameter tensors and
/// batch-norm state, plus (when `state` is given) the RESUME section that
/// makes it a checkpoint — or, on final saves, preserves the training
/// history.
pub fn build_artifact(net: &Network, meta: &RunMeta, state: Option<&TrainerState>) -> Artifact {
    let mut art = Artifact::new();
    write_meta(&mut art, meta);
    write_model_sections(&mut art, net);
    art.resume = state.map(|s| resume_section(net, s));
    art
}

/// Saves an artifact, bumping the `artifact_saves` counter.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_artifact(art: &Artifact, path: impl AsRef<Path>) -> Result<()> {
    art.save(path).map_err(art_err)?;
    hero_obs::counters::ARTIFACT_SAVES.incr();
    Ok(())
}

/// Loads an artifact from disk.
///
/// # Errors
///
/// Propagates decode and I/O errors as [`TensorError::InvalidArgument`].
pub fn load_artifact(path: impl AsRef<Path>) -> Result<Artifact> {
    Artifact::load(path).map_err(art_err)
}

/// Attaches a post-training quantization decision to an artifact: the
/// quantized values replace the TENSORS section (full precision for
/// non-quantizable tensors) and the QUANT section records the per-tensor
/// bit allocation and grid.
pub fn attach_quant(art: &mut Artifact, quantized: &[Tensor], entries: Vec<QuantEntry>) {
    for (slot, t) in art.tensors.iter_mut().zip(quantized) {
        slot.data = t.data().to_vec();
    }
    art.quant = entries;
}

// --- high-level pipeline --------------------------------------------------

/// Trains per `meta.config` and returns the record together with the
/// final model artifact (which embeds the full training history). When
/// `checkpoint_every > 0`, a resumable checkpoint artifact is written to
/// `checkpoint_path` after every `checkpoint_every`-th epoch.
///
/// # Errors
///
/// Propagates training and checkpoint-write errors.
pub fn train_to_artifact(
    net: &mut Network,
    train_set: &Dataset,
    test_set: &Dataset,
    meta: &RunMeta,
    checkpoint_every: usize,
    checkpoint_path: Option<&Path>,
) -> Result<(TrainRecord, Artifact)> {
    train_or_resume(
        net,
        train_set,
        test_set,
        meta,
        None,
        checkpoint_every,
        checkpoint_path,
    )
}

/// Resumes training from a checkpoint artifact: rebuilds the network,
/// restores the trainer snapshot and continues to the configured epoch
/// count, producing a record and final artifact bitwise equal to the
/// uninterrupted run's.
///
/// # Errors
///
/// Returns an error if the artifact is not a checkpoint (no RESUME
/// section) or is malformed; propagates training errors.
pub fn resume_from_artifact(
    art: &Artifact,
    train_set: &Dataset,
    test_set: &Dataset,
    checkpoint_every: usize,
    checkpoint_path: Option<&Path>,
) -> Result<(TrainRecord, Artifact, Network)> {
    let meta = run_meta_from_artifact(art)?;
    let state = trainer_state_from_artifact(art)?.ok_or_else(|| {
        TensorError::InvalidArgument(
            "artifact is not a resumable checkpoint (RESUME section missing)".to_string(),
        )
    })?;
    let mut net = network_from_artifact(art)?;
    let (record, final_art) = train_or_resume(
        &mut net,
        train_set,
        test_set,
        &meta,
        Some(state),
        checkpoint_every,
        checkpoint_path,
    )?;
    Ok((record, final_art, net))
}

fn train_or_resume(
    net: &mut Network,
    train_set: &Dataset,
    test_set: &Dataset,
    meta: &RunMeta,
    resume: Option<TrainerState>,
    checkpoint_every: usize,
    checkpoint_path: Option<&Path>,
) -> Result<(TrainRecord, Artifact)> {
    let meta_for_hook = meta.clone();
    let mut on_checkpoint = |net: &mut Network, state: &TrainerState| -> Result<()> {
        if let Some(path) = checkpoint_path {
            let ckpt = build_artifact(net, &meta_for_hook, Some(state));
            save_artifact(&ckpt, path)?;
        }
        Ok(())
    };
    let every = if checkpoint_path.is_some() {
        checkpoint_every
    } else {
        0
    };
    let (record, final_state) = train_resumable(
        net,
        train_set,
        test_set,
        &meta.config,
        resume,
        every,
        &mut on_checkpoint,
    )?;
    let final_art = build_artifact(net, meta, Some(&final_state));
    Ok((record, final_art))
}

// --- golden recipe --------------------------------------------------------

/// The fixed smoke recipe behind the committed golden artifact: a tiny
/// HERO run on the synthetic C10 preset, sharded executor (so the bytes
/// are identical for every `HERO_THREADS ≥ 1`), scalar-GEMM canonical.
/// Shared by `hero train --golden-recipe`, the byte-pin regression test
/// and verify.sh so the recipe cannot drift between them.
pub fn golden_recipe() -> (Dataset, Dataset, Network, RunMeta) {
    let preset = hero_data::Preset::C10;
    let (train_set, test_set) = preset.load(0.05);
    let model_cfg = crate::experiment::model_config(preset);
    let model = ModelSpec::Kind(ModelKind::Resnet);
    // Honor `HERO_THREADS` but never drop to the serial path: every
    // worker count ≥ 1 runs the same sharded math, so the recipe's bytes
    // are invariant under the env var — which is exactly what the
    // golden-pin check in verify.sh exercises.
    let config = TrainConfig::new(
        Method::Hero {
            h: 0.2,
            gamma: 0.01,
        },
        2,
    )
    .with_batch_size(8)
    .with_lr(0.05)
    .with_seed(0x601D)
    .with_threads(hero_parallel::threads_from_env().max(1));
    let mut rng = StdRng::seed_from_u64(0x601D);
    let net = ModelKind::Resnet.build(model_cfg, &mut rng);
    let meta = RunMeta {
        model,
        model_cfg,
        config,
        git_rev: "golden".to_string(),
        preflight_hash: None,
    };
    (train_set, test_set, net, meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_data::{SynthGenerator, SynthSpec};

    fn tiny_setup() -> (Network, RunMeta) {
        let model_cfg = ModelConfig {
            classes: 4,
            in_channels: 3,
            input_hw: 4,
            width: 4,
        };
        let model = ModelSpec::Mlp(vec![16]);
        let net = model.build(model_cfg);
        let config = TrainConfig::new(
            Method::Hero {
                h: 0.1,
                gamma: 0.01,
            },
            2,
        )
        .with_batch_size(16)
        .with_seed(11)
        .with_threads(0);
        (
            net,
            RunMeta {
                model,
                model_cfg,
                config,
                git_rev: "test".to_string(),
                preflight_hash: Some(42),
            },
        )
    }

    #[test]
    fn meta_round_trips_exactly() {
        let (net, meta) = tiny_setup();
        let art = build_artifact(&net, &meta, None);
        let back = run_meta_from_artifact(&art).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn network_round_trips_bitwise() {
        let (mut net, meta) = tiny_setup();
        // Move the weights off their init so the round trip is non-trivial.
        let mut params = net.params();
        for p in &mut params {
            let v: Vec<f32> = p.data().iter().map(|x| x * 1.5 + 0.01).collect();
            *p = Tensor::from_vec(v, p.dims()).unwrap();
        }
        net.set_params(&params).unwrap();
        let art = build_artifact(&net, &meta, None);
        let mut loaded = network_from_artifact(&art).unwrap();
        assert_eq!(loaded.params(), net.params());
        assert_eq!(loaded.state(), net.state());
        // Logits bitwise equal on a fixed batch.
        let spec = SynthSpec {
            classes: 4,
            hw: 4,
            noise_std: 0.2,
            ..SynthSpec::default()
        };
        let (data, _) = SynthGenerator::new(spec).train_test(8, 4);
        let a = net.predict(&data.images).unwrap();
        let b = loaded.predict(&data.images).unwrap();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn tensor_name_mismatch_is_rejected() {
        let (net, meta) = tiny_setup();
        let mut art = build_artifact(&net, &meta, None);
        art.tensors[0].name = "wrong.name".to_string();
        assert!(network_from_artifact(&art).is_err());
    }

    #[test]
    fn mlp_hidden_widths_round_trip() {
        let (_, mut meta) = tiny_setup();
        meta.model = ModelSpec::Mlp(vec![24, 12]);
        let net = meta.model.build(meta.model_cfg);
        let art = build_artifact(&net, &meta, None);
        let back = run_meta_from_artifact(&art).unwrap();
        assert_eq!(back.model, ModelSpec::Mlp(vec![24, 12]));
        assert!(network_from_artifact(&art).is_ok());
    }

    #[test]
    fn sharded_flag_round_trips_as_threads() {
        let (net, mut meta) = tiny_setup();
        meta.config.threads = 3;
        let art = build_artifact(&net, &meta, None);
        let back = run_meta_from_artifact(&art).unwrap();
        // Any count ≥ 1 is trajectory-equivalent; 1 is the canonical form.
        assert_eq!(back.config.threads, 1);
    }
}
