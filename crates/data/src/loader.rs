//! Shuffled mini-batch iteration over a [`Dataset`].

use crate::synth::Dataset;
use hero_tensor::rng::Rng;
use hero_tensor::rng::StdRng;
use hero_tensor::Tensor;

/// One mini-batch: images and aligned labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images `(b, c, h, w)`.
    pub images: Tensor,
    /// Labels, length `b`.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies out the contiguous sub-batch `[start, start + len)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the range exceeds the batch.
    pub fn shard(&self, start: usize, len: usize) -> hero_tensor::Result<Batch> {
        if start + len > self.len() {
            return Err(hero_tensor::TensorError::InvalidArgument(format!(
                "shard [{start}, {}) exceeds batch of {} samples",
                start + len,
                self.len()
            )));
        }
        Ok(Batch {
            images: self.images.narrow(start, len)?,
            labels: self.labels[start..start + len].to_vec(),
        })
    }

    /// Splits the batch into at most `shards` balanced contiguous
    /// sub-batches (see [`shard_bounds`]). The decomposition depends only
    /// on the batch length and `shards` — never on how many worker threads
    /// will consume the pieces — which is what keeps the data-parallel
    /// reduction bitwise reproducible across thread counts.
    ///
    /// # Errors
    ///
    /// Returns an error only on internal shape mismatches.
    pub fn shards(&self, shards: usize) -> hero_tensor::Result<Vec<Batch>> {
        shard_bounds(self.len(), shards)
            .into_iter()
            .map(|(s, l)| self.shard(s, l))
            .collect()
    }
}

/// Balanced contiguous shard ranges `(start, len)` covering `0..n`.
///
/// Produces `min(shards, n)` non-empty ranges whose lengths differ by at
/// most one (the first `n % shards` ranges take the extra sample). Empty
/// ranges are never emitted, so callers can weight each shard by
/// `len / n` without dividing by zero.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_bounds(n: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards > 0, "shard count must be positive");
    let base = n / shards;
    let rem = n % shards;
    let mut out = Vec::with_capacity(shards.min(n));
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < rem);
        if len == 0 {
            break;
        }
        out.push((start, len));
        start += len;
    }
    out
}

/// Produces shuffled mini-batches, reshuffling every epoch.
#[derive(Debug)]
pub struct Loader {
    batch_size: usize,
    rng: StdRng,
}

impl Loader {
    /// Creates a loader with the given batch size and shuffle seed.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Loader {
            batch_size,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Current shuffle-RNG state, for checkpointing mid-training.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restores the shuffle RNG to a previously captured state so a
    /// resumed run draws the exact same epoch orderings.
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng = StdRng::seed_from_u64(state);
    }

    /// Returns the batches of one epoch in a fresh shuffled order. The
    /// final batch may be smaller than `batch_size`.
    pub fn epoch(&mut self, data: &Dataset) -> Vec<Batch> {
        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher-Yates shuffle.
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let (c, h, w) = data.image_dims();
        let pix = c * h * w;
        let mut batches = Vec::with_capacity(n.div_ceil(self.batch_size));
        for chunk in order.chunks(self.batch_size) {
            let mut imgs = Vec::with_capacity(chunk.len() * pix);
            let mut labels = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                imgs.extend_from_slice(&data.images.data()[idx * pix..(idx + 1) * pix]);
                labels.push(data.labels[idx]);
            }
            let images = Tensor::from_vec(imgs, [chunk.len(), c, h, w])
                .expect("volume matches by construction");
            batches.push(Batch { images, labels });
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthGenerator, SynthSpec};

    fn data(n: usize) -> Dataset {
        SynthGenerator::new(SynthSpec::default()).generate(n, 1)
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let d = data(23);
        let mut loader = Loader::new(5, 0);
        let batches = loader.epoch(&d);
        assert_eq!(batches.len(), 5);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, 23);
        assert_eq!(batches.last().unwrap().labels.len(), 3);
        // Label histogram matches the dataset.
        let mut count = vec![0usize; d.classes];
        for b in &batches {
            for &l in &b.labels {
                count[l] += 1;
            }
        }
        let mut expected = vec![0usize; d.classes];
        for &l in &d.labels {
            expected[l] += 1;
        }
        assert_eq!(count, expected);
    }

    #[test]
    fn shuffling_changes_across_epochs() {
        let d = data(40);
        let mut loader = Loader::new(8, 1);
        let e1: Vec<usize> = loader
            .epoch(&d)
            .iter()
            .flat_map(|b| b.labels.clone())
            .collect();
        let e2: Vec<usize> = loader
            .epoch(&d)
            .iter()
            .flat_map(|b| b.labels.clone())
            .collect();
        assert_ne!(e1, e2, "two epochs produced identical order");
    }

    #[test]
    fn images_align_with_labels() {
        // Build a dataset where each image is constant = its label.
        let mut d = data(20);
        let pix = 3 * 8 * 8;
        for i in 0..20 {
            let l = d.labels[i] as f32;
            for v in &mut d.images.data_mut()[i * pix..(i + 1) * pix] {
                *v = l;
            }
        }
        let mut loader = Loader::new(6, 2);
        for b in loader.epoch(&d) {
            for (row, &label) in b.labels.iter().enumerate() {
                let first = b.images.get(&[row, 0, 0, 0]).unwrap();
                assert_eq!(first, label as f32);
            }
        }
    }

    #[test]
    fn seeded_loader_is_deterministic() {
        let d = data(30);
        let a: Vec<usize> = Loader::new(7, 9)
            .epoch(&d)
            .iter()
            .flat_map(|b| b.labels.clone())
            .collect();
        let b: Vec<usize> = Loader::new(7, 9)
            .epoch(&d)
            .iter()
            .flat_map(|b| b.labels.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        Loader::new(0, 0);
    }

    #[test]
    fn shard_bounds_are_balanced_and_cover() {
        for n in 0..40 {
            for k in 1..8 {
                let bounds = shard_bounds(n, k);
                assert_eq!(bounds.len(), k.min(n));
                let total: usize = bounds.iter().map(|&(_, l)| l).sum();
                assert_eq!(total, n);
                // Contiguous and non-empty.
                let mut next = 0;
                for &(s, l) in &bounds {
                    assert_eq!(s, next);
                    assert!(l > 0);
                    next = s + l;
                }
                // Balanced: lengths differ by at most one.
                if let (Some(max), Some(min)) = (
                    bounds.iter().map(|&(_, l)| l).max(),
                    bounds.iter().map(|&(_, l)| l).min(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn batch_shards_preserve_samples() {
        let d = data(10);
        let mut loader = Loader::new(10, 3);
        let batch = loader.epoch(&d).remove(0);
        let shards = batch.shards(4).unwrap();
        assert_eq!(shards.len(), 4);
        let labels: Vec<usize> = shards.iter().flat_map(|b| b.labels.clone()).collect();
        assert_eq!(labels, batch.labels);
        let pix: usize = batch.images.dims()[1..].iter().product();
        let mut row = 0;
        for s in &shards {
            for r in 0..s.len() {
                assert_eq!(
                    s.images.data()[r * pix..(r + 1) * pix],
                    batch.images.data()[(row) * pix..(row + 1) * pix]
                );
                row += 1;
            }
        }
    }

    #[test]
    fn shard_out_of_range_errors() {
        let d = data(6);
        let batch = Loader::new(6, 0).epoch(&d).remove(0);
        assert!(batch.shard(4, 3).is_err());
        assert!(batch.shard(0, 6).is_ok());
    }
}
