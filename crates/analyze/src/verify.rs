//! Structural and shape verification of a lowered tape.
//!
//! Every check here is *static*: it re-derives what each op's output shape
//! must be from its operands' recorded shapes and compares against what the
//! tape actually recorded. A disagreement means the tape was built by code
//! whose shape arithmetic is wrong — exactly the class of defect that
//! corrupts λmax estimates without failing a loss-goes-down test.

use crate::diag::{DiagCode, Diagnostic};
use hero_autodiff::{NodeTrace, TraceDetail};

/// Longest provenance chain attached to a diagnostic.
const MAX_PROVENANCE: usize = 8;

/// Walks first parents from `node` toward a leaf, stopping at malformed
/// links, to give a diagnostic its op-pipeline context.
pub(crate) fn provenance(tape: &[NodeTrace], node: usize) -> Vec<usize> {
    let mut chain = vec![node];
    let mut cur = node;
    while chain.len() < MAX_PROVENANCE {
        let Some(&parent) = tape.get(cur).and_then(|n| n.parents.first()) else {
            break;
        };
        if parent >= cur {
            break; // malformed link; structural pass reports it
        }
        chain.push(parent);
        cur = parent;
    }
    chain
}

fn diag(tape: &[NodeTrace], node: usize, code: DiagCode, message: String) -> Diagnostic {
    Diagnostic {
        node,
        op: tape[node].op.to_string(),
        code,
        message,
        provenance: provenance(tape, node),
    }
}

/// NumPy-style broadcast of two shapes (trailing axes aligned, size-1 axes
/// stretch); `None` when incompatible.
fn broadcast(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0; rank];
    for (i, slot) in out.iter_mut().enumerate() {
        let ad = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let bd = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        *slot = if ad == bd || bd == 1 {
            ad
        } else if ad == 1 {
            bd
        } else {
            return None;
        };
    }
    Some(out)
}

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Operand count each known op must record; `None` for unknown ops.
fn expected_arity(op: &str) -> Option<usize> {
    match op {
        "input" => Some(0),
        "add" | "sub" | "mul" | "matmul" | "conv2d" | "depthwise_conv2d" => Some(2),
        "batch_norm" => Some(3),
        "scale"
        | "add_scalar"
        | "relu"
        | "relu6"
        | "square"
        | "reshape"
        | "sum"
        | "mean"
        | "sigmoid"
        | "tanh"
        | "leaky_relu"
        | "ln"
        | "dropout"
        | "mse_loss"
        | "max_pool2d"
        | "avg_pool2d"
        | "global_avg_pool2d"
        | "cross_entropy"
        | "cross_entropy_smoothed" => Some(1),
        _ => None,
    }
}

/// Runs the structural checks (parent validity, topological order, index
/// agreement) and, for structurally sound nodes, the per-op shape checks.
pub(crate) fn structural_and_shape_pass(tape: &[NodeTrace]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, node) in tape.iter().enumerate() {
        if node.index != i {
            out.push(diag(
                tape,
                i,
                DiagCode::IndexMismatch,
                format!(
                    "recorded index {} but sits at tape position {i}",
                    node.index
                ),
            ));
        }
        let mut structurally_sound = true;
        for (slot, &p) in node.parents.iter().enumerate() {
            if p >= tape.len() {
                structurally_sound = false;
                out.push(diag(
                    tape,
                    i,
                    DiagCode::ParentOutOfRange,
                    format!(
                        "operand {slot} refers to node #{p}, but the tape has {} nodes",
                        tape.len()
                    ),
                ));
            } else if p >= i {
                structurally_sound = false;
                out.push(diag(
                    tape,
                    i,
                    DiagCode::ForwardReference,
                    format!("operand {slot} refers to node #{p}, which does not precede #{i} in tape order"),
                ));
            }
        }
        if let Some(want) = expected_arity(node.op) {
            if node.parents.len() != want {
                structurally_sound = false;
                out.push(diag(
                    tape,
                    i,
                    DiagCode::ArityMismatch,
                    format!(
                        "`{}` takes {want} operand(s), but {} are recorded",
                        node.op,
                        node.parents.len()
                    ),
                ));
            }
        }
        if structurally_sound {
            check_shapes(tape, i, &mut out);
        }
    }
    out
}

/// Convenience accessors over a structurally sound node.
struct Operands<'a> {
    tape: &'a [NodeTrace],
    node: &'a NodeTrace,
}

impl Operands<'_> {
    fn parent_shape(&self, slot: usize) -> &[usize] {
        &self.tape[self.node.parents[slot]].shape
    }
}

fn check_shapes(tape: &[NodeTrace], i: usize, out: &mut Vec<Diagnostic>) {
    let node = &tape[i];
    let ops = Operands { tape, node };
    let recorded = &node.shape;
    // The shape the op must produce, derived from the operands; `None`
    // when an operand-level error was already reported.
    let expected: Option<Vec<usize>> = match node.op {
        "input" => None,
        "add" | "sub" | "mul" => {
            let (a, b) = (ops.parent_shape(0), ops.parent_shape(1));
            match broadcast(a, b) {
                Some(s) => Some(s),
                None => {
                    out.push(diag(
                        tape,
                        i,
                        DiagCode::BroadcastIncompatible,
                        format!("operand shapes {a:?} and {b:?} cannot broadcast together"),
                    ));
                    None
                }
            }
        }
        "scale" | "add_scalar" | "relu" | "relu6" | "square" | "sigmoid" | "tanh"
        | "leaky_relu" | "ln" | "dropout" => Some(ops.parent_shape(0).to_vec()),
        "matmul" => check_matmul(tape, i, &ops, out),
        "reshape" => check_reshape(tape, i, &ops, out),
        "sum" | "mean" | "mse_loss" => Some(vec![]),
        "cross_entropy" | "cross_entropy_smoothed" => check_loss(tape, i, &ops, out),
        "conv2d" => check_conv2d(tape, i, &ops, out),
        "depthwise_conv2d" => check_depthwise(tape, i, &ops, out),
        "batch_norm" => check_batch_norm(tape, i, &ops, out),
        "max_pool2d" => check_max_pool(tape, i, &ops, out),
        "avg_pool2d" => check_avg_pool(tape, i, &ops, out),
        "global_avg_pool2d" => check_global_pool(tape, i, &ops, out),
        // Unknown op: nothing to derive; skip rather than guess.
        _ => None,
    };
    if let Some(expected) = expected {
        // Scalar-producing ops record rank-0 values; accept any recorded
        // one-element shape so a `[1]` scalar is not a false positive.
        let scalar_ok = expected.is_empty() && numel(recorded) == 1;
        if *recorded != expected && !scalar_ok {
            out.push(diag(
                tape,
                i,
                DiagCode::ShapeMismatch,
                format!("recorded output shape {recorded:?}, but operands imply {expected:?}"),
            ));
        }
    }
}

fn check_rank(
    tape: &[NodeTrace],
    i: usize,
    shape: &[usize],
    want: usize,
    what: &str,
    out: &mut Vec<Diagnostic>,
) -> bool {
    if shape.len() != want {
        out.push(diag(
            tape,
            i,
            DiagCode::RankMismatch,
            format!("{what} must have rank {want}, got shape {shape:?}"),
        ));
        return false;
    }
    true
}

fn check_matmul(
    tape: &[NodeTrace],
    i: usize,
    ops: &Operands,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<usize>> {
    let (a, b) = (ops.parent_shape(0), ops.parent_shape(1));
    let rank_ok =
        check_rank(tape, i, a, 2, "matmul lhs", out) & check_rank(tape, i, b, 2, "matmul rhs", out);
    if !rank_ok {
        return None;
    }
    if a[1] != b[0] {
        out.push(diag(
            tape,
            i,
            DiagCode::MatmulDimMismatch,
            format!(
                "inner dimensions disagree: lhs {a:?} contracts over {}, rhs {b:?} over {}",
                a[1], b[0]
            ),
        ));
        return None;
    }
    Some(vec![a[0], b[1]])
}

fn check_reshape(
    tape: &[NodeTrace],
    i: usize,
    ops: &Operands,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<usize>> {
    let parent = ops.parent_shape(0);
    let TraceDetail::Reshape { from } = &ops.node.detail else {
        return None;
    };
    if from != parent {
        out.push(diag(
            tape,
            i,
            DiagCode::ShapeMismatch,
            format!("reshape recorded source shape {from:?}, but its operand has shape {parent:?}"),
        ));
    }
    if numel(&ops.node.shape) != numel(parent) {
        out.push(diag(
            tape,
            i,
            DiagCode::ReshapeCountMismatch,
            format!(
                "reshape changes the element count: {parent:?} has {} elements, output {:?} has {}",
                numel(parent),
                ops.node.shape,
                numel(&ops.node.shape)
            ),
        ));
    }
    None // both checks above are authoritative; no further comparison
}

fn check_loss(
    tape: &[NodeTrace],
    i: usize,
    ops: &Operands,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<usize>> {
    let logits = ops.parent_shape(0);
    if !check_rank(tape, i, logits, 2, "cross-entropy logits", out) {
        return None;
    }
    if let TraceDetail::Loss { labels } = ops.node.detail {
        if labels != logits[0] {
            out.push(diag(
                tape,
                i,
                DiagCode::LabelCountMismatch,
                format!(
                    "{labels} labels recorded for a logits batch of {}",
                    logits[0]
                ),
            ));
        }
    }
    Some(vec![])
}

fn check_conv2d(
    tape: &[NodeTrace],
    i: usize,
    ops: &Operands,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<usize>> {
    let (x, w) = (ops.parent_shape(0), ops.parent_shape(1));
    let rank_ok = check_rank(tape, i, x, 4, "conv2d input", out)
        & check_rank(tape, i, w, 2, "conv2d weight", out);
    if !rank_ok {
        return None;
    }
    let TraceDetail::Conv { geom } = ops.node.detail else {
        return None;
    };
    let (n, c, h, wd) = (x[0], x[1], x[2], x[3]);
    if geom.in_h != h || geom.in_w != wd {
        out.push(diag(
            tape,
            i,
            DiagCode::ConvGeometryMismatch,
            format!(
                "geometry expects a {}x{} input, but the operand is {h}x{wd}",
                geom.in_h, geom.in_w
            ),
        ));
        return None;
    }
    let patch = c * geom.kernel * geom.kernel;
    if w[1] != patch {
        out.push(diag(
            tape,
            i,
            DiagCode::ConvGeometryMismatch,
            format!(
                "weight {w:?} must have {patch} columns (in_c {c} x {k} x {k})",
                k = geom.kernel
            ),
        ));
        return None;
    }
    let (oh, ow) = geom.out_hw();
    Some(vec![n, w[0], oh, ow])
}

fn check_depthwise(
    tape: &[NodeTrace],
    i: usize,
    ops: &Operands,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<usize>> {
    let (x, w) = (ops.parent_shape(0), ops.parent_shape(1));
    if !check_rank(tape, i, x, 4, "depthwise input", out) {
        return None;
    }
    let TraceDetail::Conv { geom } = ops.node.detail else {
        return None;
    };
    let (n, c, h, wd) = (x[0], x[1], x[2], x[3]);
    if geom.in_h != h || geom.in_w != wd {
        out.push(diag(
            tape,
            i,
            DiagCode::ConvGeometryMismatch,
            format!(
                "geometry expects a {}x{} input, but the operand is {h}x{wd}",
                geom.in_h, geom.in_w
            ),
        ));
        return None;
    }
    if w != [c, geom.kernel, geom.kernel] {
        out.push(diag(
            tape,
            i,
            DiagCode::ConvGeometryMismatch,
            format!(
                "depthwise weight must be [{c}, {k}, {k}], got {w:?}",
                k = geom.kernel
            ),
        ));
        return None;
    }
    let (oh, ow) = geom.out_hw();
    Some(vec![n, c, oh, ow])
}

fn check_batch_norm(
    tape: &[NodeTrace],
    i: usize,
    ops: &Operands,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<usize>> {
    let x = ops.parent_shape(0);
    if !check_rank(tape, i, x, 4, "batch-norm input", out) {
        return None;
    }
    let c = x[1];
    for (slot, name) in [(1usize, "gamma"), (2, "beta")] {
        let s = ops.parent_shape(slot);
        if s != [c] {
            out.push(diag(
                tape,
                i,
                DiagCode::ShapeMismatch,
                format!("batch-norm {name} must be [{c}], got {s:?}"),
            ));
        }
    }
    Some(x.to_vec())
}

fn check_max_pool(
    tape: &[NodeTrace],
    i: usize,
    ops: &Operands,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<usize>> {
    let x = ops.parent_shape(0);
    if !check_rank(tape, i, x, 4, "max-pool input", out) {
        return None;
    }
    let rec = &ops.node.shape;
    if !check_rank(tape, i, rec, 4, "max-pool output", out) {
        return None;
    }
    // Window side is not stored on the tape; recover it from the recorded
    // output and cross-check divisibility and the argmax routing.
    if rec[0] != x[0] || rec[1] != x[1] || rec[2] == 0 || rec[3] == 0 {
        out.push(diag(
            tape,
            i,
            DiagCode::PoolGeometryMismatch,
            format!("max-pool output {rec:?} incompatible with input {x:?}"),
        ));
        return None;
    }
    let (kh, kw) = (x[2] / rec[2], x[3] / rec[3]);
    if kh == 0 || kh != kw || rec[2] * kh != x[2] || rec[3] * kw != x[3] {
        out.push(diag(
            tape,
            i,
            DiagCode::PoolGeometryMismatch,
            format!(
                "max-pool output {rec:?} does not evenly tile input {x:?} with a square window"
            ),
        ));
        return None;
    }
    if let TraceDetail::MaxPool {
        outputs,
        max_source,
    } = ops.node.detail
    {
        if outputs != numel(rec) {
            out.push(diag(
                tape,
                i,
                DiagCode::PoolGeometryMismatch,
                format!(
                    "max-pool saved {outputs} argmax entries for {} output elements",
                    numel(rec)
                ),
            ));
        }
        if let Some(src) = max_source {
            if src >= numel(x) {
                out.push(diag(
                    tape,
                    i,
                    DiagCode::ArgIndexOutOfRange,
                    format!(
                        "max-pool argmax routes from flat index {src}, but the input has only {} elements",
                        numel(x)
                    ),
                ));
            }
        }
    }
    None // geometry checks above already compared the recorded shape
}

fn check_avg_pool(
    tape: &[NodeTrace],
    i: usize,
    ops: &Operands,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<usize>> {
    let x = ops.parent_shape(0);
    if !check_rank(tape, i, x, 4, "avg-pool input", out) {
        return None;
    }
    let TraceDetail::AvgPool { k } = ops.node.detail else {
        return None;
    };
    if k == 0 || !x[2].is_multiple_of(k) || !x[3].is_multiple_of(k) {
        out.push(diag(
            tape,
            i,
            DiagCode::PoolGeometryMismatch,
            format!("window side {k} does not evenly tile input {x:?}"),
        ));
        return None;
    }
    Some(vec![x[0], x[1], x[2] / k, x[3] / k])
}

fn check_global_pool(
    tape: &[NodeTrace],
    i: usize,
    ops: &Operands,
    out: &mut Vec<Diagnostic>,
) -> Option<Vec<usize>> {
    let x = ops.parent_shape(0);
    if !check_rank(tape, i, x, 4, "global-avg-pool input", out) {
        return None;
    }
    Some(vec![x[0], x[1]])
}
