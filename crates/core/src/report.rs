//! Plain-text rendering of experiment results, mirroring the paper's
//! table and figure layouts.

use crate::experiment::{Fig2, Fig3, QuantCurve, Table1, Table2, Table3};

/// A simple aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty; extra cells are kept).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an accuracy as a percentage with two decimals (paper style).
pub fn pct(acc: f32) -> String {
    format!("{:.2}%", acc * 100.0)
}

/// Renders Table 1 in the paper's layout.
pub fn render_table1(t: &Table1) -> String {
    let mut header = vec!["Dataset", "Model"];
    let names: Vec<&str> = t.methods.iter().map(|m| m.paper_name()).collect();
    header.extend(names.iter().copied());
    let mut table = TextTable::new(&header);
    for row in &t.rows {
        let mut cells = vec![row.dataset.to_string(), row.model.to_string()];
        cells.extend(row.accs.iter().map(|&a| pct(a)));
        table.row(cells);
    }
    format!(
        "Table 1: Test accuracy on various models and datasets.\n{}",
        table.render()
    )
}

/// Renders Table 2 in the paper's layout.
pub fn render_table2(t: &Table2) -> String {
    let mut header = vec!["Noise ratio".to_string()];
    header.extend(t.ratios.iter().map(|r| format!("{:.0}%", r * 100.0)));
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&headers);
    for (mi, m) in t.methods.iter().enumerate() {
        let mut cells = vec![m.paper_name().to_string()];
        cells.extend(t.accs[mi].iter().map(|&a| pct(a)));
        table.row(cells);
    }
    format!(
        "Table 2: Test accuracy under noisy-label training ({}).\n{}",
        t.model,
        table.render()
    )
}

/// Renders Table 3 in the paper's layout.
pub fn render_table3(t: &Table3) -> String {
    let mut header = vec!["Quantization (bit)".to_string()];
    header.extend(t.bits.iter().map(|b| b.to_string()));
    header.push("Full".to_string());
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&headers);
    for (mi, m) in t.methods.iter().enumerate() {
        let mut cells = vec![m.paper_name().to_string()];
        cells.extend(t.accs[mi].iter().map(|&a| pct(a)));
        table.row(cells);
    }
    format!(
        "Table 3: Ablation on HERO, first-order only, and SGD (MobileNetV2 / CIFAR-10).\n{}",
        table.render()
    )
}

/// Renders one Fig. 1 panel: quantization curves for several methods on
/// one (dataset, model) pair.
pub fn render_fig1_panel(dataset: &str, model: &str, curves: &[QuantCurve]) -> String {
    let mut header = vec!["Bits".to_string()];
    header.extend(curves.iter().map(|c| c.method.paper_name().to_string()));
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&headers);
    if let Some(first) = curves.first() {
        for (i, &(bits, _)) in first.points.iter().enumerate() {
            let mut cells = vec![bits.to_string()];
            for c in curves {
                cells.push(pct(c.points[i].1));
            }
            table.row(cells);
        }
    }
    let mut full = vec!["Full".to_string()];
    full.extend(curves.iter().map(|c| pct(c.full_acc)));
    table.row(full);
    format!(
        "Fig 1 panel: {dataset} / {model} post-training quantization accuracy.\n{}",
        table.render()
    )
}

/// Renders Fig. 2 as two aligned series tables.
pub fn render_fig2(f: &Fig2) -> String {
    let mut out = String::from("Fig 2(a): Hessian norm ‖Hz‖ across training.\n");
    let mut header = vec!["Epoch".to_string()];
    header.extend(f.methods.iter().map(|m| m.paper_name().to_string()));
    let headers: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&headers);
    if let Some(first) = f.hessian_series.first() {
        for (i, &(epoch, _)) in first.iter().enumerate() {
            let mut cells = vec![epoch.to_string()];
            for s in &f.hessian_series {
                cells.push(
                    s.get(i)
                        .map(|&(_, v)| format!("{v:.4}"))
                        .unwrap_or_default(),
                );
            }
            table.row(cells);
        }
    }
    out.push_str(&table.render());
    out.push_str("\nFig 2(b): generalization gap over the final training epochs.\n");
    let mut gap_table = TextTable::new(&["Method", "Mean late gap"]);
    for (m, g) in f.methods.iter().zip(&f.late_gaps) {
        gap_table.row(vec![m.paper_name().to_string(), pct(*g)]);
    }
    out.push_str(&gap_table.render());
    out
}

/// Renders Fig. 3 as ASCII contours plus flatness statistics.
pub fn render_fig3(f: &Fig3) -> String {
    format!(
        "Fig 3: loss contours around converged weights (threshold +{:.2}).\n\
         (a) HERO  — low-loss fraction {:.3}, flat radius {:.3}\n{}\n\
         (b) SGD   — low-loss fraction {:.3}, flat radius {:.3}\n{}",
        f.threshold,
        f.hero.low_loss_fraction(f.threshold),
        f.hero.flat_radius(f.threshold),
        f.hero.ascii_contour(f.threshold),
        f.sgd.low_loss_fraction(f.threshold),
        f.sgd.flat_radius(f.threshold),
        f.sgd.ascii_contour(f.threshold),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::MethodKind;

    #[test]
    fn text_table_aligns_columns() {
        let mut t = TextTable::new(&["A", "Longer"]);
        t.row(vec!["xx".into(), "y".into()]);
        t.row(vec!["a-very-long-cell".into(), "z".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have the same rendered position for column 2.
        let pos: Vec<usize> = [lines[0], lines[2], lines[3]]
            .iter()
            .map(|l| l.trim_end().rfind(' ').unwrap())
            .collect();
        assert_eq!(pos[0], pos[1]);
        assert_eq!(pos[1], pos[2]);
    }

    #[test]
    fn pct_formats_paper_style() {
        assert_eq!(pct(0.9344), "93.44%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn render_table1_includes_all_cells() {
        let t = Table1 {
            methods: vec![MethodKind::Hero, MethodKind::Sgd],
            rows: vec![crate::experiment::Table1Row {
                dataset: "CIFAR-10",
                model: "ResNet20",
                accs: vec![0.93, 0.91],
            }],
        };
        let s = render_table1(&t);
        assert!(s.contains("CIFAR-10"));
        assert!(s.contains("ResNet20"));
        assert!(s.contains("93.00%"));
        assert!(s.contains("HERO"));
        assert!(s.contains("SGD"));
    }

    #[test]
    fn render_table2_and_3() {
        let t2 = Table2 {
            model: "ResNet20",
            ratios: vec![0.2, 0.8],
            methods: vec![MethodKind::Hero],
            accs: vec![vec![0.9, 0.7]],
        };
        let s = render_table2(&t2);
        assert!(s.contains("20%") && s.contains("80%") && s.contains("70.00%"));
        let t3 = Table3 {
            bits: vec![4, 8],
            methods: vec![MethodKind::Hero, MethodKind::FirstOrder],
            accs: vec![vec![0.9, 0.92, 0.93], vec![0.85, 0.9, 0.91]],
        };
        let s = render_table3(&t3);
        assert!(s.contains("First-order only"));
        assert!(s.contains("Full"));
    }

    #[test]
    fn render_fig1_panel_rows_match_bits() {
        let c = QuantCurve {
            method: MethodKind::Hero,
            full_acc: 0.95,
            points: vec![(4, 0.9), (8, 0.94)],
        };
        let s = render_fig1_panel("CIFAR-10", "VGG19BN", &[c]);
        assert!(s.contains("VGG19BN"));
        assert!(s.lines().count() >= 5);
        assert!(s.contains("90.00%"));
    }
}

#[cfg(test)]
mod render_fig_tests {
    use super::*;
    use crate::experiment::{Fig2, Fig3, MethodKind};
    use hero_landscape::{scan_2d, LossOracle};
    use hero_tensor::Tensor;

    fn tiny_scan() -> crate::experiment::Fig3 {
        let mut bowl = |ps: &[Tensor]| Ok(0.01 * ps[0].norm_l2_sq());
        let sharp = {
            let mut b = |ps: &[Tensor]| Ok(ps[0].norm_l2_sq() * 30.0);
            let params = vec![Tensor::zeros([2])];
            let d1 = vec![Tensor::from_vec(vec![1.0, 0.0], [2]).unwrap()];
            let d2 = vec![Tensor::from_vec(vec![0.0, 1.0], [2]).unwrap()];
            scan_2d(&mut b as &mut dyn LossOracle, &params, &d1, &d2, 1.0, 5).unwrap()
        };
        let flat = {
            let params = vec![Tensor::zeros([2])];
            let d1 = vec![Tensor::from_vec(vec![1.0, 0.0], [2]).unwrap()];
            let d2 = vec![Tensor::from_vec(vec![0.0, 1.0], [2]).unwrap()];
            scan_2d(&mut bowl as &mut dyn LossOracle, &params, &d1, &d2, 1.0, 5).unwrap()
        };
        Fig3 {
            hero: flat,
            sgd: sharp,
            threshold: 0.1,
        }
    }

    #[test]
    fn render_fig2_lists_all_methods_and_epochs() {
        let f = Fig2 {
            methods: vec![MethodKind::Hero, MethodKind::Sgd],
            hessian_series: vec![vec![(0, 2.0), (5, 1.0)], vec![(0, 3.0), (5, 4.0)]],
            late_gaps: vec![0.02, 0.08],
        };
        let s = render_fig2(&f);
        assert!(s.contains("HERO"));
        assert!(s.contains("SGD"));
        assert!(s.contains("2.0000"));
        assert!(s.contains("8.00%"));
        assert!(s.contains("Fig 2(a)"));
        assert!(s.contains("Fig 2(b)"));
    }

    #[test]
    fn render_fig2_handles_empty_series() {
        let f = Fig2 {
            methods: vec![],
            hessian_series: vec![],
            late_gaps: vec![],
        };
        let s = render_fig2(&f);
        assert!(s.contains("Fig 2"));
    }

    #[test]
    fn render_fig3_shows_both_contours_and_flatness_order() {
        let f = tiny_scan();
        let s = render_fig3(&f);
        assert!(s.contains("(a) HERO"));
        assert!(s.contains("(b) SGD"));
        assert!(s.contains('#'));
        // The flat (HERO) scan reports a higher low-loss fraction.
        assert!(f.hero.low_loss_fraction(0.1) > f.sgd.low_loss_fraction(0.1));
    }
}
