//! Training-time data augmentation: pad-and-random-crop plus random
//! horizontal flip — the paper's "basic data augmentations" (§5.1).

use hero_tensor::rng::Rng;
use hero_tensor::{Result, Tensor};

/// Augmentation policy applied independently to each batch at training
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augment {
    /// Zero padding before the random crop (the crop returns to the
    /// original size). 0 disables cropping.
    pub pad: usize,
    /// Apply a random horizontal flip with probability ½.
    pub hflip: bool,
}

impl Augment {
    /// The paper's CIFAR policy: pad-crop (1 pixel at our scale) + flip.
    pub fn standard() -> Self {
        Augment {
            pad: 1,
            hflip: true,
        }
    }

    /// No augmentation.
    pub fn none() -> Self {
        Augment {
            pad: 0,
            hflip: false,
        }
    }

    /// Applies the policy to an NCHW batch, randomizing per batch.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the batch is not 4-D.
    pub fn apply(&self, batch: &Tensor, rng: &mut impl Rng) -> Result<Tensor> {
        if batch.rank() != 4 {
            return Err(hero_tensor::TensorError::RankMismatch {
                expected: 4,
                actual: batch.rank(),
            });
        }
        let mut out = batch.clone();
        if self.pad > 0 {
            let h = batch.dims()[2];
            let w = batch.dims()[3];
            let padded = out.pad2d(self.pad)?;
            let top = rng.gen_range(0..=2 * self.pad);
            let left = rng.gen_range(0..=2 * self.pad);
            out = padded.crop_window2d(top, left, h, w)?;
        }
        if self.hflip && rng.gen::<bool>() {
            out = out.flip_horizontal()?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_tensor::rng::StdRng;

    fn batch() -> Tensor {
        Tensor::from_fn([2, 3, 4, 4], |i| (i.iter().sum::<usize>() % 7) as f32)
    }

    #[test]
    fn none_policy_is_identity() {
        let b = batch();
        let out = Augment::none()
            .apply(&b, &mut StdRng::seed_from_u64(0))
            .unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn apply_preserves_shape() {
        let b = batch();
        let out = Augment::standard()
            .apply(&b, &mut StdRng::seed_from_u64(1))
            .unwrap();
        assert_eq!(out.dims(), b.dims());
        assert!(out.is_finite());
    }

    #[test]
    fn augmentation_varies_across_calls() {
        let b = batch();
        let mut rng = StdRng::seed_from_u64(2);
        let aug = Augment::standard();
        let outs: Vec<Tensor> = (0..8).map(|_| aug.apply(&b, &mut rng).unwrap()).collect();
        assert!(
            outs.iter().any(|o| o != &outs[0]),
            "no variation in 8 draws"
        );
    }

    #[test]
    fn flip_only_policy_flips_half_the_time() {
        let b = batch();
        let aug = Augment {
            pad: 0,
            hflip: true,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut flipped = 0;
        for _ in 0..64 {
            let out = aug.apply(&b, &mut rng).unwrap();
            if out != b {
                assert_eq!(out, b.flip_horizontal().unwrap());
                flipped += 1;
            }
        }
        assert!((16..=48).contains(&flipped), "flips {flipped}/64");
    }

    #[test]
    fn crop_keeps_content_within_pad_distance() {
        // A single bright pixel moves by at most `pad` in each direction.
        let mut b = Tensor::zeros([1, 1, 5, 5]);
        b.set(&[0, 0, 2, 2], 1.0).unwrap();
        let aug = Augment {
            pad: 1,
            hflip: false,
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..16 {
            let out = aug.apply(&b, &mut rng).unwrap();
            assert_eq!(out.sum(), 1.0);
            let idx = out.argmax();
            let (y, x) = (idx / 5 % 5, idx % 5);
            assert!(
                (1..=3).contains(&y) && (1..=3).contains(&x),
                "pixel at ({y},{x})"
            );
        }
    }

    #[test]
    fn rejects_non_image_batches() {
        let b = Tensor::zeros([2, 3]);
        assert!(Augment::standard()
            .apply(&b, &mut StdRng::seed_from_u64(5))
            .is_err());
    }
}
