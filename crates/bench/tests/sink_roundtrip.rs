//! Round-trips the CLI's JSON sinks through the obs parser. Every float
//! the binary interpolates into a sink must go through the NaN-safe
//! encoder: a degenerate run (constant ranking → NaN overlap, unevaluated
//! epoch → NaN accuracy) must land as `null`, never as a bare `NaN`
//! token that no JSON parser accepts.

use hero_obs::json::{parse, Value};
use std::path::PathBuf;
use std::process::{Command, Output};

fn hero() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hero"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hero_sink_{}_{name}", std::process::id()))
}

fn read_sink(path: &PathBuf, out: &Output) -> String {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "sink not written ({e}); stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        )
    });
    std::fs::remove_file(path).ok();
    text
}

fn assert_num_or_null(obj: &Value, key: &str) {
    match obj.get(key) {
        Some(Value::Num(_) | Value::Null) => {}
        other => panic!("`{key}` should be a number or null, got {other:?}"),
    }
}

#[test]
fn noise_crosscheck_sink_round_trips_through_the_json_parser() {
    let out_path = tmp("nc.json");
    let out = hero()
        .args([
            "noise-crosscheck",
            "--preset",
            "c10",
            "--models",
            "resnet",
            "--scale",
            "0.05",
            "--epochs",
            "1",
            "--trials",
            "1",
            "--bits",
            "2,4",
            "--avg",
            "4",
            "--out",
        ])
        .arg(&out_path)
        .output()
        .expect("spawn hero");
    // A soundness violation exits nonzero but still writes the sink; only
    // an unparseable sink is a failure here.
    let text = read_sink(&out_path, &out);
    let value = parse(&text).unwrap_or_else(|e| panic!("sink is not valid JSON: {e}\n---\n{text}"));

    let models = value
        .get("models")
        .and_then(Value::as_arr)
        .expect("models array");
    assert_eq!(models.len(), 1, "one model requested");
    let m = &models[0];
    assert_eq!(m.get("model").and_then(Value::as_str), Some("ResNet20"));
    for key in ["overlap", "full_acc", "mixed_acc", "uniform_acc"] {
        assert_num_or_null(m, key);
    }
    for cell in m.get("cells").and_then(Value::as_arr).expect("cells") {
        assert_num_or_null(cell, "certified");
        assert_num_or_null(cell, "empirical");
    }
    assert_num_or_null(&value, "worst_overlap");
}

#[test]
fn spectrum_sink_round_trips_through_the_json_parser() {
    let out_path = tmp("spectrum.json");
    let out = hero()
        .args([
            "spectrum",
            "--preset",
            "c10",
            "--model",
            "resnet",
            "--methods",
            "sgd",
            "--scale",
            "0.05",
            "--epochs",
            "1",
            "--steps",
            "4",
            "--probes",
            "2",
            "--out",
        ])
        .arg(&out_path)
        .output()
        .expect("spawn hero");
    assert!(
        out.status.success(),
        "spectrum failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = read_sink(&out_path, &out);
    let value = parse(&text).unwrap_or_else(|e| panic!("sink is not valid JSON: {e}\n---\n{text}"));
    let methods = value
        .get("methods")
        .and_then(Value::as_arr)
        .expect("methods array");
    assert_eq!(methods.len(), 1);
    let m = &methods[0];
    for key in [
        "lambda_max",
        "lambda_min",
        "trace",
        "spearman_trace_vs_static",
    ] {
        assert_num_or_null(m, key);
    }
    // The per-layer trace table mixes finite means with NaN standard
    // errors at low probe counts — exactly the case the encoder exists for.
    for layer in m.get("layers").and_then(Value::as_arr).expect("layers") {
        assert_num_or_null(layer, "trace");
        assert_num_or_null(layer, "trace_se");
    }
}
